//! Hardware cost model for the AdaServe reproduction.
//!
//! AdaServe is *hardware-aware*: it sizes the per-iteration verification
//! token budget from "profiling-based roofline models" of the GPU platform
//! (paper §1, §3 footnote 1). The original system profiles real A100s; this
//! crate substitutes an analytical roofline model derived from first
//! principles (FLOP and byte counts of the exact transformer architectures in
//! the paper's Table 1) that reproduces the published latency magnitudes:
//!
//! * Llama-3.1-70B, 4-way tensor parallel on A100-80G: ≈25–35 ms per decode
//!   step at small batch sizes (the paper's category-1 SLO is 1.2× this
//!   baseline; MLPerf v5.0 specifies 40 ms/token for Llama-70B interactive).
//! * Llama-3.2-1B draft on a single A100: single-digit milliseconds per step.
//!
//! Every serving engine in this repository — AdaServe and all baselines — is
//! timed by this same model, so relative comparisons are apples-to-apples.
//!
//! # Modules
//!
//! * [`gpu`] — device specifications (A100/H100/L40S presets).
//! * [`model`] — transformer model specifications and FLOP/byte accounting.
//! * [`latency`] — the forward-pass latency model (roofline + overheads).
//! * [`profiler`] — token-budget search and latency-curve generation.
//!
//! # Example
//!
//! ```
//! use roofline::{ForwardPass, LatencyModel, SeqWork};
//!
//! // Llama-3.1-70B on 4×A100 (the paper's Table 1 setup).
//! let lm = LatencyModel::llama70b_4xa100();
//! let one_token = ForwardPass::new(vec![SeqWork::decode(512)]);
//! let t = lm.forward_latency_ms(&one_token, true);
//! assert!(t > 15.0 && t < 45.0, "decode step = {t} ms");
//! ```

pub mod gpu;
pub mod latency;
pub mod model;
pub mod profiler;

pub use gpu::GpuSpec;
pub use latency::{ForwardPass, LatencyModel, SeqWork};
pub use model::ModelSpec;
pub use profiler::{BudgetPolicy, LatencyCurve, TokenBudgetProfile};

/// A full hardware/model deployment: target + draft models on a GPU group.
///
/// Mirrors the paper's Table 1 rows plus the draft-model placement note
/// (§6.1: "the draft model is colocated with the base model on one of the
/// GPUs", hence the draft runs without tensor parallelism).
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Human-readable name, e.g. `"Llama-3.1-70B-Instruct / 4xA100"`.
    pub name: &'static str,
    /// Latency model of the target (verified) model.
    pub target: LatencyModel,
    /// Latency model of the draft (speculating) model.
    pub draft: LatencyModel,
}

impl Testbed {
    /// The paper's first setup: Llama-3.1-70B (4-way TP) + Llama-3.2-1B draft.
    pub fn llama70b() -> Self {
        Self {
            name: "Llama-3.1-70B-Instruct / 4xA100-80G (TP=4)",
            target: LatencyModel::llama70b_4xa100(),
            draft: LatencyModel::new(ModelSpec::llama_1b(), GpuSpec::a100_80g(), 1),
        }
    }

    /// The paper's second setup: Qwen2.5-32B (2-way TP) + Qwen2.5-0.5B draft.
    pub fn qwen32b() -> Self {
        Self {
            name: "Qwen2.5-32B-Instruct / 2xA100-80G (TP=2)",
            target: LatencyModel::qwen32b_2xa100(),
            draft: LatencyModel::new(ModelSpec::qwen_05b(), GpuSpec::a100_80g(), 1),
        }
    }

    /// A what-if setup for heterogeneous-fleet studies: the paper's
    /// Llama-3.1-70B deployment moved onto 4×H100.
    ///
    /// Not part of Table 1; used by the `cluster` crate to model mixed
    /// fleets where some replicas run on newer, faster hardware.
    pub fn llama70b_h100() -> Self {
        Self {
            name: "Llama-3.1-70B-Instruct / 4xH100-80G (TP=4)",
            target: LatencyModel::new(ModelSpec::llama_70b(), GpuSpec::h100_80g(), 4),
            draft: LatencyModel::new(ModelSpec::llama_1b(), GpuSpec::h100_80g(), 1),
        }
    }

    /// Both paper testbeds, in Table 1 order.
    pub fn paper_testbeds() -> Vec<Testbed> {
        vec![Self::llama70b(), Self::qwen32b()]
    }

    /// Baseline decode latency (ms) at near-zero load (paper §6.1).
    ///
    /// Measured as a single-request decode step at a representative context
    /// length; used as the reference point for category-1 SLOs.
    pub fn baseline_decode_ms(&self) -> f64 {
        let pass = ForwardPass::new(vec![SeqWork::decode(512)]);
        self.target.forward_latency_ms(&pass, true)
    }

    /// HBM bytes available for KV cache after weights, for the whole group.
    pub fn kv_capacity_bytes(&self) -> u64 {
        let total = self.target.gpu().hbm_bytes() * u64::from(self.target.tensor_parallel());
        let weights = self.target.model().weight_bytes() + self.draft.model().weight_bytes();
        // Keep a 10% reserve for activations and fragmentation slack, as real
        // serving systems do (vLLM's gpu_memory_utilization defaults to 0.9).
        let usable = (total as f64 * 0.9) as u64;
        usable.saturating_sub(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_testbed_baseline_matches_published_magnitude() {
        let tb = Testbed::llama70b();
        let ms = tb.baseline_decode_ms();
        assert!(ms > 15.0 && ms < 45.0, "llama70b decode = {ms} ms");
    }

    #[test]
    fn h100_testbed_is_faster_than_a100() {
        let a100 = Testbed::llama70b().baseline_decode_ms();
        let h100 = Testbed::llama70b_h100().baseline_decode_ms();
        assert!(h100 < a100, "h100 = {h100} ms, a100 = {a100} ms");
    }

    #[test]
    fn qwen_testbed_is_faster_than_llama() {
        let llama = Testbed::llama70b().baseline_decode_ms();
        let qwen = Testbed::qwen32b().baseline_decode_ms();
        assert!(qwen < llama);
    }

    #[test]
    fn draft_is_an_order_of_magnitude_faster() {
        let tb = Testbed::llama70b();
        let pass = ForwardPass::new(vec![SeqWork::decode(512)]);
        let draft_ms = tb.draft.forward_latency_ms(&pass, true);
        assert!(
            draft_ms * 5.0 < tb.baseline_decode_ms(),
            "draft = {draft_ms} ms"
        );
    }

    #[test]
    fn kv_capacity_is_positive_and_below_hbm() {
        let tb = Testbed::llama70b();
        let cap = tb.kv_capacity_bytes();
        assert!(cap > 0);
        assert!(cap < 4 * tb.target.gpu().hbm_bytes());
    }
}
