//! GPU device specifications.

/// Specification of a single GPU device.
///
/// Peak numbers are the published dense (non-sparsity) figures; the latency
/// model applies achievable-efficiency factors on top (real kernels reach
/// 40–70% of peak compute and 70–90% of peak bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak dense BF16/FP16 tensor throughput, in TFLOP/s.
    pub peak_tflops: f64,
    /// Peak HBM bandwidth, in GB/s.
    pub hbm_gbps: f64,
    /// HBM capacity, in GiB.
    pub hbm_gib: f64,
    /// Per-direction NVLink bandwidth to peers, in GB/s.
    pub nvlink_gbps: f64,
    /// CPU-side cost of launching one kernel, in microseconds.
    pub kernel_launch_us: f64,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-80GB (the paper's evaluation platform).
    pub fn a100_80g() -> Self {
        Self {
            name: "A100-SXM4-80GB",
            peak_tflops: 312.0,
            hbm_gbps: 2039.0,
            hbm_gib: 80.0,
            nvlink_gbps: 300.0,
            kernel_launch_us: 4.5,
        }
    }

    /// NVIDIA H100-SXM5-80GB (for what-if ablations).
    pub fn h100_80g() -> Self {
        Self {
            name: "H100-SXM5-80GB",
            peak_tflops: 989.0,
            hbm_gbps: 3350.0,
            hbm_gib: 80.0,
            nvlink_gbps: 450.0,
            kernel_launch_us: 4.5,
        }
    }

    /// NVIDIA L40S (PCIe inference card, for what-if ablations).
    pub fn l40s() -> Self {
        Self {
            name: "L40S",
            peak_tflops: 362.0,
            hbm_gbps: 864.0,
            hbm_gib: 48.0,
            nvlink_gbps: 32.0, // PCIe Gen4 x16 effective.
            kernel_launch_us: 4.5,
        }
    }

    /// HBM capacity in bytes.
    pub fn hbm_bytes(&self) -> u64 {
        (self.hbm_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Peak compute in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }

    /// Peak HBM bandwidth in bytes/s.
    pub fn hbm_bytes_per_sec(&self) -> f64 {
        self.hbm_gbps * 1e9
    }

    /// Peak NVLink bandwidth in bytes/s (per direction).
    pub fn nvlink_bytes_per_sec(&self) -> f64 {
        self.nvlink_gbps * 1e9
    }

    /// Machine balance: FLOPs per HBM byte at peak.
    ///
    /// A forward pass with arithmetic intensity below this is memory-bound.
    pub fn balance_flops_per_byte(&self) -> f64 {
        self.peak_flops() / self.hbm_bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_balance_is_about_150() {
        let b = GpuSpec::a100_80g().balance_flops_per_byte();
        assert!(b > 120.0 && b < 180.0, "balance = {b}");
    }

    #[test]
    fn hbm_bytes_consistent() {
        assert_eq!(GpuSpec::a100_80g().hbm_bytes(), 80 * 1024 * 1024 * 1024);
    }

    #[test]
    fn h100_dominates_a100() {
        let a = GpuSpec::a100_80g();
        let h = GpuSpec::h100_80g();
        assert!(h.peak_tflops > a.peak_tflops);
        assert!(h.hbm_gbps > a.hbm_gbps);
    }
}
