//! The forward-pass latency model.
//!
//! One [`ForwardPass`] describes everything a serving engine submits to the
//! device in one iteration: for each sequence, how many *new* tokens are
//! processed (1 for plain decode, `|T_i|` for tree verification, a chunk for
//! prefill, `w` for a beam-search speculation step) and over what context
//! length. The latency is the roofline maximum of compute and memory time,
//! plus tensor-parallel all-reduce and kernel-launch overheads:
//!
//! ```text
//! t = max(flops / (peak·η_c·TP), bytes / (bw·η_m)) + t_allreduce + t_launch
//! ```
//!
//! with weights read once per pass (the defining property of batching:
//! amortized weight traffic) and KV read per sequence.

use crate::gpu::GpuSpec;
use crate::model::ModelSpec;

/// Work contributed by one sequence to a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqWork {
    /// Number of new tokens processed for this sequence.
    pub new_tokens: u32,
    /// Context length the new tokens attend over (tokens already in KV).
    pub ctx_len: u32,
}

impl SeqWork {
    /// Work of a single-token decode step at context `ctx_len`.
    pub fn decode(ctx_len: u32) -> Self {
        Self {
            new_tokens: 1,
            ctx_len,
        }
    }

    /// Work of verifying a token tree of `tree_size` tokens.
    pub fn verify(tree_size: u32, ctx_len: u32) -> Self {
        Self {
            new_tokens: tree_size,
            ctx_len,
        }
    }

    /// Work of prefilling a prompt chunk of `chunk` tokens starting at
    /// position `already_prefilled`.
    ///
    /// Only the chunk itself is priced — tokens before
    /// `already_prefilled` contribute attention context but no new
    /// compute. This is what makes cross-request KV reuse free at this
    /// layer: a request admitted with a prefix-cache hit
    /// (`serving::PrefixCache`) starts prefill at the cached length, so
    /// the cached portion is never charged.
    pub fn prefill(chunk: u32, already_prefilled: u32) -> Self {
        Self {
            new_tokens: chunk,
            ctx_len: already_prefilled,
        }
    }
}

/// A batched forward pass over any mix of sequences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForwardPass {
    seqs: Vec<SeqWork>,
}

impl ForwardPass {
    /// Creates a pass over the given per-sequence work items.
    pub fn new(seqs: Vec<SeqWork>) -> Self {
        Self { seqs }
    }

    /// Adds one sequence's work.
    pub fn push(&mut self, work: SeqWork) {
        self.seqs.push(work);
    }

    /// The per-sequence work items.
    pub fn seqs(&self) -> &[SeqWork] {
        &self.seqs
    }

    /// Total new tokens across all sequences.
    pub fn total_tokens(&self) -> u64 {
        self.seqs.iter().map(|s| u64::from(s.new_tokens)).sum()
    }

    /// Whether the pass does no work.
    pub fn is_empty(&self) -> bool {
        self.total_tokens() == 0
    }
}

/// Query-tile size of the attention kernels (FlashAttention-style).
///
/// Causal attention reads each KV block once per *tile* of queries, not once
/// per query token; without this, long prefill/verification passes would be
/// charged quadratic KV traffic that real fused kernels do not incur.
const QUERY_TILE: f64 = 64.0;

/// Roofline latency model for one model on one tensor-parallel GPU group.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    model: ModelSpec,
    gpu: GpuSpec,
    tp: u32,
    /// Fraction of peak compute achievable by fused transformer kernels.
    compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth achievable by streaming reads.
    memory_efficiency: f64,
    /// Kernel launches per transformer layer in eager mode.
    kernels_per_layer: f64,
    /// All-reduce base latency per layer (us), covering ring setup.
    allreduce_base_us: f64,
}

impl LatencyModel {
    /// Creates a latency model with calibrated default efficiencies.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or the weights do not fit the group's HBM.
    pub fn new(model: ModelSpec, gpu: GpuSpec, tp: u32) -> Self {
        assert!(tp >= 1, "tensor parallelism must be >= 1");
        let group_hbm = gpu.hbm_bytes() * u64::from(tp);
        assert!(
            model.weight_bytes() < group_hbm,
            "{} does not fit on {}x{}",
            model.name,
            tp,
            gpu.name
        );
        Self {
            model,
            gpu,
            tp,
            compute_efficiency: 0.52,
            memory_efficiency: 0.82,
            kernels_per_layer: 9.0,
            allreduce_base_us: 9.0,
        }
    }

    /// The paper's Llama setup: 70B with 4-way TP on A100s.
    pub fn llama70b_4xa100() -> Self {
        Self::new(ModelSpec::llama_70b(), GpuSpec::a100_80g(), 4)
    }

    /// The paper's Qwen setup: 32B with 2-way TP on A100s.
    pub fn qwen32b_2xa100() -> Self {
        Self::new(ModelSpec::qwen_32b(), GpuSpec::a100_80g(), 2)
    }

    /// The modelled transformer.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The modelled device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Tensor-parallel degree.
    pub fn tensor_parallel(&self) -> u32 {
        self.tp
    }

    /// Overrides efficiency factors (for sensitivity ablations).
    pub fn with_efficiencies(mut self, compute: f64, memory: f64) -> Self {
        assert!(compute > 0.0 && compute <= 1.0);
        assert!(memory > 0.0 && memory <= 1.0);
        self.compute_efficiency = compute;
        self.memory_efficiency = memory;
        self
    }

    /// Latency of `pass` in milliseconds.
    ///
    /// `cuda_graph` selects launch-overhead accounting: captured graphs replay
    /// with a single launch, eager mode pays per-kernel launches (paper §5.2).
    pub fn forward_latency_ms(&self, pass: &ForwardPass, cuda_graph: bool) -> f64 {
        if pass.is_empty() {
            return 0.0;
        }
        let total_tokens = pass.total_tokens() as f64;

        // Compute: dense matmuls scale with tokens; attention with ctx.
        let mut flops = self.model.linear_flops_per_token() * total_tokens;
        for s in pass.seqs() {
            // Each new token attends over ctx plus previously batched new
            // tokens; approximate with the midpoint.
            let avg_ctx = f64::from(s.ctx_len) + f64::from(s.new_tokens) / 2.0;
            flops += self.model.attention_flops_per_token(avg_ctx as u64) * f64::from(s.new_tokens);
        }
        let compute_s =
            flops / (self.gpu.peak_flops() * self.compute_efficiency * f64::from(self.tp));

        // Memory: weights once per pass (sharded across TP, read in
        // parallel), KV per sequence (also sharded), activations negligible.
        let weight_bytes = self.model.weight_bytes() as f64 / f64::from(self.tp);
        let mut kv_bytes = 0.0;
        for s in pass.seqs() {
            let avg_ctx = f64::from(s.ctx_len) + f64::from(s.new_tokens) / 2.0;
            let tiles = (f64::from(s.new_tokens) / QUERY_TILE).ceil();
            kv_bytes += self.model.kv_read_bytes(avg_ctx as u64) * tiles;
        }
        kv_bytes /= f64::from(self.tp);
        let memory_s =
            (weight_bytes + kv_bytes) / (self.gpu.hbm_bytes_per_sec() * self.memory_efficiency);

        // Tensor-parallel all-reduce: two per layer (attention + MLP), each
        // moving the activations of all new tokens.
        let allreduce_s = if self.tp > 1 {
            let bytes_per_reduce = total_tokens * f64::from(self.model.hidden) * 2.0;
            let per_layer = 2.0
                * (self.allreduce_base_us * 1e-6
                    + bytes_per_reduce * 2.0 * (f64::from(self.tp - 1) / f64::from(self.tp))
                        / self.gpu.nvlink_bytes_per_sec());
            per_layer * f64::from(self.model.layers)
        } else {
            0.0
        };

        // Launch overhead: captured graphs replay with ~one launch.
        let launch_s = if cuda_graph {
            3.0 * self.gpu.kernel_launch_us * 1e-6
        } else {
            self.kernels_per_layer * f64::from(self.model.layers) * self.gpu.kernel_launch_us * 1e-6
        };

        (compute_s.max(memory_s) + allreduce_s + launch_s) * 1e3
    }

    /// Token count at which the pass transitions from memory- to compute-bound.
    ///
    /// Below this batch size extra verification tokens are *nearly free* —
    /// the roofline insight speculative decoding exploits.
    pub fn roofline_knee_tokens(&self, ctx_len: u32) -> u64 {
        // Find smallest token count whose compute time exceeds memory time.
        let mut lo = 1u64;
        let mut hi = 16_384u64;
        let crossed = |tokens: u64| -> bool {
            let pass = ForwardPass::new(vec![SeqWork {
                new_tokens: tokens as u32,
                ctx_len,
            }]);
            self.compute_time_s(&pass) > self.memory_time_s(&pass)
        };
        if !crossed(hi) {
            return hi;
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if crossed(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    fn compute_time_s(&self, pass: &ForwardPass) -> f64 {
        let total_tokens = pass.total_tokens() as f64;
        let mut flops = self.model.linear_flops_per_token() * total_tokens;
        for s in pass.seqs() {
            let avg_ctx = f64::from(s.ctx_len) + f64::from(s.new_tokens) / 2.0;
            flops += self.model.attention_flops_per_token(avg_ctx as u64) * f64::from(s.new_tokens);
        }
        flops / (self.gpu.peak_flops() * self.compute_efficiency * f64::from(self.tp))
    }

    fn memory_time_s(&self, pass: &ForwardPass) -> f64 {
        let weight_bytes = self.model.weight_bytes() as f64 / f64::from(self.tp);
        let mut kv_bytes = 0.0;
        for s in pass.seqs() {
            let avg_ctx = f64::from(s.ctx_len) + f64::from(s.new_tokens) / 2.0;
            let tiles = (f64::from(s.new_tokens) / QUERY_TILE).ceil();
            kv_bytes += self.model.kv_read_bytes(avg_ctx as u64) * tiles;
        }
        kv_bytes /= f64::from(self.tp);
        (weight_bytes + kv_bytes) / (self.gpu.hbm_bytes_per_sec() * self.memory_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama() -> LatencyModel {
        LatencyModel::llama70b_4xa100()
    }

    #[test]
    fn empty_pass_is_free() {
        assert_eq!(
            llama().forward_latency_ms(&ForwardPass::default(), true),
            0.0
        );
    }

    #[test]
    fn decode_latency_is_flat_then_grows() {
        // Small batches are memory-bound: latency ≈ constant. Large batches
        // are compute-bound: latency grows with batch size.
        let lm = llama();
        let t1 = lm.forward_latency_ms(&ForwardPass::new(vec![SeqWork::decode(512); 1]), true);
        let t32 = lm.forward_latency_ms(&ForwardPass::new(vec![SeqWork::decode(512); 32]), true);
        let t1024 =
            lm.forward_latency_ms(&ForwardPass::new(vec![SeqWork::decode(512); 1024]), true);
        assert!(t32 < t1 * 1.5, "t1={t1} t32={t32}");
        assert!(t1024 > t32 * 2.0, "t32={t32} t1024={t1024}");
    }

    #[test]
    fn latency_monotone_in_tokens() {
        let lm = llama();
        let mut prev = 0.0;
        for n in [1u32, 8, 64, 256, 1024, 4096] {
            let t = lm.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork {
                    new_tokens: n,
                    ctx_len: 512,
                }]),
                true,
            );
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn longer_context_costs_more() {
        let lm = llama();
        let short = lm.forward_latency_ms(&ForwardPass::new(vec![SeqWork::decode(128)]), true);
        let long = lm.forward_latency_ms(&ForwardPass::new(vec![SeqWork::decode(8192)]), true);
        assert!(long > short);
    }

    #[test]
    fn tensor_parallelism_reduces_decode_latency() {
        let tp1 = LatencyModel::new(ModelSpec::qwen_32b(), GpuSpec::a100_80g(), 1);
        let tp2 = LatencyModel::new(ModelSpec::qwen_32b(), GpuSpec::a100_80g(), 2);
        let pass = ForwardPass::new(vec![SeqWork::decode(512)]);
        assert!(tp2.forward_latency_ms(&pass, true) < tp1.forward_latency_ms(&pass, true));
    }

    #[test]
    fn eager_mode_is_slower_than_graphs() {
        let lm = llama();
        let pass = ForwardPass::new(vec![SeqWork::decode(512)]);
        assert!(lm.forward_latency_ms(&pass, false) > lm.forward_latency_ms(&pass, true));
    }

    #[test]
    fn knee_is_in_plausible_range() {
        // A100 balance ≈ 150 flops/byte; with 2-byte weights the knee sits at
        // a few hundred tokens for the 70B model.
        let knee = llama().roofline_knee_tokens(512);
        assert!(knee > 32 && knee < 2048, "knee = {knee}");
    }

    #[test]
    fn prefill_chunk_is_compute_heavy() {
        let lm = llama();
        let chunk = ForwardPass::new(vec![SeqWork::prefill(2048, 0)]);
        let decode = ForwardPass::new(vec![SeqWork::decode(512)]);
        let tc = lm.forward_latency_ms(&chunk, false);
        let td = lm.forward_latency_ms(&decode, true);
        assert!(tc > 2.0 * td, "prefill chunk {tc} ms vs decode {td} ms");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_rejected() {
        let _ = LatencyModel::new(ModelSpec::llama_70b(), GpuSpec::a100_80g(), 1);
    }
}
