//! Property tests for the roofline latency model.

use proptest::prelude::*;
use roofline::{ForwardPass, LatencyModel, SeqWork};

fn models() -> Vec<LatencyModel> {
    vec![
        LatencyModel::llama70b_4xa100(),
        LatencyModel::qwen32b_2xa100(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn latency_is_positive_and_finite(
        tokens in 1u32..4096,
        ctx in 0u32..8192,
        graph in any::<bool>(),
    ) {
        for m in models() {
            let t = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork { new_tokens: tokens, ctx_len: ctx }]),
                graph,
            );
            prop_assert!(t.is_finite() && t > 0.0);
        }
    }

    #[test]
    fn latency_monotone_in_new_tokens(tokens in 1u32..2048, ctx in 0u32..4096) {
        for m in models() {
            let a = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork { new_tokens: tokens, ctx_len: ctx }]),
                true,
            );
            let b = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork { new_tokens: tokens + 64, ctx_len: ctx }]),
                true,
            );
            prop_assert!(b >= a, "tokens {} -> {}: {a} !<= {b}", tokens, tokens + 64);
        }
    }

    #[test]
    fn latency_monotone_in_context(tokens in 1u32..256, ctx in 0u32..4096) {
        for m in models() {
            let a = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork { new_tokens: tokens, ctx_len: ctx }]),
                true,
            );
            let b = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork { new_tokens: tokens, ctx_len: ctx + 512 }]),
                true,
            );
            prop_assert!(b >= a);
        }
    }

    #[test]
    fn batching_is_subadditive(n in 2u32..32, ctx in 0u32..2048) {
        // Serving n sequences in one pass is never slower than n passes.
        for m in models() {
            let together = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork::decode(ctx); n as usize]),
                true,
            );
            let alone = m.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork::decode(ctx)]),
                true,
            );
            prop_assert!(together <= alone * f64::from(n) + 1e-9);
        }
    }

    #[test]
    fn graph_mode_never_slower(tokens in 1u32..512, ctx in 0u32..2048) {
        for m in models() {
            let pass = ForwardPass::new(vec![SeqWork { new_tokens: tokens, ctx_len: ctx }]);
            prop_assert!(m.forward_latency_ms(&pass, true) <= m.forward_latency_ms(&pass, false));
        }
    }
}
