//! Property tests for traces, mixes and datasets.

use proptest::prelude::*;
use workload::{ArrivalTrace, Category, CategoryMix, LengthSampler, TraceKind, WorkloadBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rescaled_traces_hit_target_rate(seed in 0u64..500, target in 0.5f64..12.0) {
        let t = ArrivalTrace::generate(TraceKind::RealWorld, seed).rescale_to_rps(target);
        if t.len() >= 2 {
            prop_assert!((t.mean_rps() - target).abs() < 1e-6);
        }
    }

    #[test]
    fn truncation_never_reorders_or_leaks(seed in 0u64..500, cut_ms in 1_000.0f64..600_000.0) {
        let t = ArrivalTrace::generate(TraceKind::RealWorld, seed).truncate(cut_ms);
        let times = t.times_ms();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(times.iter().all(|&x| x <= cut_ms));
    }

    #[test]
    fn mix_sampling_stays_in_support(urgent in 0.0f64..1.0, h in any::<u64>()) {
        let mix = CategoryMix::with_urgent_fraction(urgent);
        let c = mix.sample(h);
        prop_assert!(mix.prob(c) > 0.0 || urgent == 0.0 || urgent == 1.0);
    }

    #[test]
    fn lengths_always_within_clips(seed in any::<u64>(), rid in 0u64..100_000) {
        let s = LengthSampler::new(seed);
        for c in Category::ALL {
            let (p, o) = s.sample(c, rid);
            let pd = LengthSampler::prompt_dist(c);
            let od = LengthSampler::output_dist(c);
            prop_assert!(p >= pd.min && p <= pd.max);
            prop_assert!(o >= od.min && o <= od.max);
        }
    }

    #[test]
    fn workloads_are_sorted_and_slo_consistent(
        seed in 0u64..200,
        baseline in 10.0f64..60.0,
        scale in 0.5f64..2.0,
    ) {
        let wl = WorkloadBuilder::new(seed, baseline)
            .cat1_slo_scale(scale)
            .target_rps(3.0)
            .duration_ms(30_000.0)
            .build();
        for pair in wl.requests.windows(2) {
            prop_assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
        }
        for r in &wl.requests {
            match r.category {
                Category::CodingCopilot => {
                    prop_assert!((r.tpot_slo_ms - baseline * scale).abs() < 1e-9)
                }
                Category::Chatbot => prop_assert!((r.tpot_slo_ms - 50.0).abs() < 1e-9),
                Category::Summarization => {
                    prop_assert!((r.tpot_slo_ms - 150.0).abs() < 1e-9)
                }
            }
            prop_assert!(r.prompt_len > 0 && r.output_len > 0);
        }
    }
}
