//! The `ADASERVE_SMOKE` experiment-scale override, probed in a dedicated
//! test binary.
//!
//! Mutating the process environment races concurrent `getenv` calls from
//! other threads (the reason `set_var` is unsafe in edition 2024), so this
//! binary holds exactly one test and nothing else runs alongside it.

use workload::{smoke_scale, SMOKE_DURATION_MS};

#[test]
fn smoke_scale_clamps_only_under_the_env_var() {
    std::env::remove_var("ADASERVE_SMOKE");
    assert_eq!(
        smoke_scale(10.0, 60_000.0),
        (10.0, 60_000.0),
        "full scale without ADASERVE_SMOKE"
    );

    std::env::set_var("ADASERVE_SMOKE", "1");
    assert_eq!(
        smoke_scale(10.0, 60_000.0),
        (5.0, SMOKE_DURATION_MS),
        "rate halves, duration clamps"
    );
    assert_eq!(
        smoke_scale(3.5, 60_000.0),
        (2.0, SMOKE_DURATION_MS),
        "halved rate floors at 2 rps"
    );
    assert_eq!(
        smoke_scale(12.0, 2_000.0),
        (6.0, 2_000.0),
        "already-short durations stay"
    );
    std::env::remove_var("ADASERVE_SMOKE");
}
