//! The `ADASERVE_SEED` override, probed in a dedicated test binary.
//!
//! Mutating the process environment races concurrent `getenv` calls from
//! other threads (the reason `set_var` is unsafe in edition 2024), so this
//! binary holds exactly one test and nothing else runs alongside it.

use workload::env_seed;

#[test]
fn env_seed_prefers_the_environment() {
    assert_eq!(env_seed(42), 42, "default without ADASERVE_SEED");
    std::env::set_var("ADASERVE_SEED", "1234");
    assert_eq!(env_seed(42), 1234, "environment wins");
    assert_eq!(env_seed(7), 1234, "default is ignored once set");
    std::env::remove_var("ADASERVE_SEED");
    assert_eq!(env_seed(7), 7);
}
