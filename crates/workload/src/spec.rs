//! Static request specifications.

use crate::category::Category;

/// A shared token prefix carried by a request.
///
/// Requests whose `prefix` fields agree on `seed` share the first
/// `min(len, prompt_len)` prompt tokens *byte for byte* — the prefix
/// portion of [`RequestSpec::prompt_tokens`] is derived from `seed`
/// instead of the request's private `stream_seed`. This is how the
/// workload generators model shared system prompts (many requests, one
/// prefix seed) and multi-turn sessions (one seed per session, `len`
/// growing turn over turn), giving a cross-request prefix cache real
/// structure to hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixSpec {
    /// Seed of the shared prefix's content stream.
    pub seed: u64,
    /// Length of the shared prefix in tokens (clamped to `prompt_len`).
    pub len: u32,
}

/// Everything known about a request before it is served.
///
/// All fields are fixed at workload-generation time, so every engine serves
/// byte-identical request streams. The *content* of prompt and output tokens
/// is derived on demand from `stream_seed` by the synthetic LM.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Workload-unique id (also the arrival order).
    pub id: u64,
    /// Application category (determines SLO and content class).
    pub category: Category,
    /// Arrival time in milliseconds from workload start.
    pub arrival_ms: f64,
    /// Prompt length in tokens.
    pub prompt_len: u32,
    /// Number of output tokens the request generates before EOS.
    pub output_len: u32,
    /// Resolved TPOT SLO in milliseconds.
    pub tpot_slo_ms: f64,
    /// Resolved TTFT SLO in milliseconds (arrival → first decode step).
    pub ttft_slo_ms: f64,
    /// Seed of the request's content stream (drives the synthetic LM).
    pub stream_seed: u64,
    /// Shared-prefix membership, if any. `None` (the default everywhere
    /// a generator does not opt in) derives every prompt token from
    /// `stream_seed`, reproducing the historical token stream exactly.
    pub prefix: Option<PrefixSpec>,
}

/// Derives prompt token `i` of the stream seeded by `seed`.
fn prompt_token(seed: u64, i: u64) -> simllm::TokenId {
    let h = simllm::hash::seed_stream(seed ^ 0x9907_7F00, i);
    // Skip the reserved special ids.
    simllm::TokenId((h % 120_000) as u32 + 2)
}

impl RequestSpec {
    /// The prompt token sequence (derived deterministically from the seed).
    ///
    /// Token `i` comes from the shared prefix stream while
    /// `i < prefix.len`, and from the request's own `stream_seed` (at the
    /// same index `i`) past it, so two requests sharing a [`PrefixSpec`]
    /// agree exactly on the prefix and diverge immediately after.
    pub fn prompt_tokens(&self) -> Vec<simllm::TokenId> {
        let mut tokens = Vec::with_capacity(self.prompt_len as usize);
        let shared = self.shared_prefix_len();
        for i in 0..u64::from(self.prompt_len) {
            let seed = match self.prefix {
                Some(p) if i < u64::from(shared) => p.seed,
                _ => self.stream_seed,
            };
            tokens.push(prompt_token(seed, i));
        }
        tokens
    }

    /// Shared-prefix length in tokens (0 without a [`PrefixSpec`]),
    /// clamped to the prompt length.
    pub fn shared_prefix_len(&self) -> u32 {
        self.prefix.map_or(0, |p| p.len.min(self.prompt_len))
    }

    /// Total tokens (prompt + output) this request will occupy in KV cache.
    pub fn total_tokens(&self) -> u64 {
        u64::from(self.prompt_len) + u64::from(self.output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RequestSpec {
        RequestSpec {
            id: 3,
            category: Category::Chatbot,
            arrival_ms: 100.0,
            prompt_len: 16,
            output_len: 8,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_200.0,
            stream_seed: 99,
            prefix: None,
        }
    }

    #[test]
    fn prompt_tokens_are_deterministic_and_sized() {
        let s = spec();
        let a = s.prompt_tokens();
        let b = s.prompt_tokens();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|t| t.0 >= 2));
    }

    #[test]
    fn shared_prefix_agrees_across_requests_and_diverges_after() {
        let p = PrefixSpec { seed: 7, len: 10 };
        let mut a = spec();
        let mut b = spec();
        a.stream_seed = 1;
        b.stream_seed = 2;
        a.prefix = Some(p);
        b.prefix = Some(p);
        let ta = a.prompt_tokens();
        let tb = b.prompt_tokens();
        assert_eq!(ta[..10], tb[..10], "prefix tokens are shared");
        assert_ne!(ta[10..], tb[10..], "suffixes come from private streams");
    }

    #[test]
    fn zero_length_prefix_matches_no_prefix() {
        let mut a = spec();
        a.prefix = Some(PrefixSpec { seed: 7, len: 0 });
        assert_eq!(a.prompt_tokens(), spec().prompt_tokens());
        assert_eq!(a.shared_prefix_len(), 0);
    }

    #[test]
    fn prefix_len_is_clamped_to_prompt_len() {
        let mut a = spec();
        a.prefix = Some(PrefixSpec { seed: 7, len: 999 });
        assert_eq!(a.shared_prefix_len(), 16);
        let mut b = spec();
        b.stream_seed = 12345;
        b.prefix = a.prefix;
        assert_eq!(a.prompt_tokens(), b.prompt_tokens(), "fully shared prompt");
    }

    #[test]
    fn total_tokens_adds_both_phases() {
        assert_eq!(spec().total_tokens(), 24);
    }
}
