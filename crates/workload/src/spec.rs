//! Static request specifications.

use crate::category::Category;

/// Everything known about a request before it is served.
///
/// All fields are fixed at workload-generation time, so every engine serves
/// byte-identical request streams. The *content* of prompt and output tokens
/// is derived on demand from `stream_seed` by the synthetic LM.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Workload-unique id (also the arrival order).
    pub id: u64,
    /// Application category (determines SLO and content class).
    pub category: Category,
    /// Arrival time in milliseconds from workload start.
    pub arrival_ms: f64,
    /// Prompt length in tokens.
    pub prompt_len: u32,
    /// Number of output tokens the request generates before EOS.
    pub output_len: u32,
    /// Resolved TPOT SLO in milliseconds.
    pub tpot_slo_ms: f64,
    /// Resolved TTFT SLO in milliseconds (arrival → first decode step).
    pub ttft_slo_ms: f64,
    /// Seed of the request's content stream (drives the synthetic LM).
    pub stream_seed: u64,
}

impl RequestSpec {
    /// The prompt token sequence (derived deterministically from the seed).
    pub fn prompt_tokens(&self) -> Vec<simllm::TokenId> {
        let mut tokens = Vec::with_capacity(self.prompt_len as usize);
        for i in 0..u64::from(self.prompt_len) {
            let h = simllm::hash::seed_stream(self.stream_seed ^ 0x9907_7F00, i);
            // Skip the reserved special ids.
            tokens.push(simllm::TokenId((h % 120_000) as u32 + 2));
        }
        tokens
    }

    /// Total tokens (prompt + output) this request will occupy in KV cache.
    pub fn total_tokens(&self) -> u64 {
        u64::from(self.prompt_len) + u64::from(self.output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RequestSpec {
        RequestSpec {
            id: 3,
            category: Category::Chatbot,
            arrival_ms: 100.0,
            prompt_len: 16,
            output_len: 8,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_200.0,
            stream_seed: 99,
        }
    }

    #[test]
    fn prompt_tokens_are_deterministic_and_sized() {
        let s = spec();
        let a = s.prompt_tokens();
        let b = s.prompt_tokens();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|t| t.0 >= 2));
    }

    #[test]
    fn total_tokens_adds_both_phases() {
        assert_eq!(spec().total_tokens(), 24);
    }
}
