//! Arrival traces: real-world-shaped, synthetic staggered-peak, and Poisson.
//!
//! The paper generates arrival timestamps from a production trace ("we use
//! the timestamps from a real-world trace from previous work", §6.1, Fig. 7 —
//! the Splitwise trace), truncated and rescaled to each experiment's target
//! request rate, plus a synthetic trace where the three application
//! categories peak at different times (Fig. 13). Both are reproduced here as
//! seeded generators with the same qualitative shapes.

use crate::category::Category;
use simllm::hash::{combine, seed_stream, unit_f64};

/// Which arrival process to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// Bursty 20-minute production-shaped trace (paper Fig. 7).
    RealWorld,
    /// 6-minute staggered-peak trace; each category bursts at a different
    /// time (paper Fig. 13). Arrivals carry their category.
    Synthetic,
    /// Homogeneous Poisson arrivals at `rps` for `duration_ms`.
    Poisson {
        /// Average request rate.
        rps: f64,
        /// Trace span in milliseconds.
        duration_ms: f64,
    },
}

/// One arrival: a timestamp, optionally pinned to a category.
///
/// Real-world and Poisson arrivals leave the category to the workload mix;
/// synthetic-trace arrivals pin it (that is the point of Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time in milliseconds from trace start.
    pub time_ms: f64,
    /// Category pinned by the trace, if any.
    pub category: Option<Category>,
}

/// A time-ordered list of arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Generates a trace of the given kind.
    pub fn generate(kind: TraceKind, seed: u64) -> Self {
        match kind {
            TraceKind::RealWorld => Self::real_world(seed),
            TraceKind::Synthetic => Self::synthetic(seed),
            TraceKind::Poisson { rps, duration_ms } => Self::poisson(seed, rps, duration_ms),
        }
    }

    /// Creates a trace from explicit arrivals (sorted by time).
    pub fn from_arrivals(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).expect("finite times"));
        Self { arrivals }
    }

    /// Homogeneous Poisson arrivals.
    pub fn poisson(seed: u64, rps: f64, duration_ms: f64) -> Self {
        assert!(rps > 0.0 && duration_ms > 0.0);
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        let mut i = 0u64;
        loop {
            let u = unit_f64(seed_stream(seed, i)).max(1e-12);
            t += -u.ln() / rps * 1e3;
            if t > duration_ms {
                break;
            }
            arrivals.push(Arrival {
                time_ms: t,
                category: None,
            });
            i += 1;
        }
        Self { arrivals }
    }

    /// The Fig. 7-shaped trace: 20 minutes, smooth AR(1) load with bursts.
    fn real_world(seed: u64) -> Self {
        const DURATION_MS: f64 = 20.0 * 60.0 * 1e3;
        const BUCKET_MS: f64 = 10_000.0;
        let buckets = (DURATION_MS / BUCKET_MS) as usize;
        // Per-bucket rate (requests/s): smooth base + occasional bursts,
        // mirroring the production trace's 20–100 req/min envelope.
        let mut rate = 0.8f64;
        let mut arrivals = Vec::new();
        for b in 0..buckets {
            let h = seed_stream(combine(seed, 0xB0C4E7), b as u64);
            let noise = unit_f64(h) - 0.5;
            rate = (0.7 * rate + 0.3 * 0.8 + 0.45 * noise).clamp(0.15, 1.6);
            let burst = if unit_f64(seed_stream(h, 1)) < 0.07 {
                1.0 + 1.5 * unit_f64(seed_stream(h, 2))
            } else {
                1.0
            };
            let bucket_rate = rate * burst;
            // Poisson arrivals within the bucket via exponential gaps.
            let mut t = b as f64 * BUCKET_MS;
            let mut i = 0u64;
            loop {
                let u = unit_f64(seed_stream(combine(h, 3), i)).max(1e-12);
                t += -u.ln() / bucket_rate * 1e3;
                if t >= (b as f64 + 1.0) * BUCKET_MS {
                    break;
                }
                arrivals.push(Arrival {
                    time_ms: t,
                    category: None,
                });
                i += 1;
            }
        }
        Self::from_arrivals(arrivals)
    }

    /// The Fig. 13-shaped trace: 6 minutes, per-category staggered peaks.
    ///
    /// Chat peaks first (~1 min), coding in the middle (~3 min) and
    /// summarization last (~5 min); every category keeps a small base rate.
    fn synthetic(seed: u64) -> Self {
        const DURATION_MS: f64 = 6.0 * 60.0 * 1e3;
        let peaks_s = [
            (Category::Chatbot, 60.0, 3.2),
            (Category::CodingCopilot, 180.0, 3.6),
            (Category::Summarization, 300.0, 2.8),
        ];
        const BASE_RPS: f64 = 0.25;
        const PEAK_WIDTH_S: f64 = 38.0;
        let mut arrivals = Vec::new();
        for (ci, (category, center_s, amp)) in peaks_s.into_iter().enumerate() {
            let max_rate = BASE_RPS + amp;
            // Thinning: homogeneous at max_rate, accept with rate(t)/max.
            let mut t = 0.0f64;
            let mut i = 0u64;
            let cseed = combine(seed, 0x517E + ci as u64);
            loop {
                let u = unit_f64(seed_stream(cseed, 2 * i)).max(1e-12);
                t += -u.ln() / max_rate * 1e3;
                if t > DURATION_MS {
                    break;
                }
                let dt = (t / 1e3 - center_s) / PEAK_WIDTH_S;
                let rate = BASE_RPS + amp * (-0.5 * dt * dt).exp();
                if unit_f64(seed_stream(cseed, 2 * i + 1)) < rate / max_rate {
                    arrivals.push(Arrival {
                        time_ms: t,
                        category: Some(category),
                    });
                }
                i += 1;
            }
        }
        Self::from_arrivals(arrivals)
    }

    /// Arrival timestamps in milliseconds.
    pub fn times_ms(&self) -> Vec<f64> {
        self.arrivals.iter().map(|a| a.time_ms).collect()
    }

    /// The arrivals (sorted by time).
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Mean request rate over the trace span.
    pub fn mean_rps(&self) -> f64 {
        if self.arrivals.len() < 2 {
            return 0.0;
        }
        let span = self.arrivals.last().expect("non-empty").time_ms
            - self.arrivals.first().expect("non-empty").time_ms;
        if span <= 0.0 {
            return 0.0;
        }
        (self.arrivals.len() - 1) as f64 / (span / 1e3)
    }

    /// Keeps only arrivals within the first `duration_ms`.
    pub fn truncate(mut self, duration_ms: f64) -> Self {
        self.arrivals.retain(|a| a.time_ms <= duration_ms);
        self
    }

    /// Uniformly dilates time so the mean rate becomes `target_rps`.
    ///
    /// This is the paper's rescaling: the *shape* (relative burstiness) is
    /// preserved, only the absolute rate changes.
    pub fn rescale_to_rps(mut self, target_rps: f64) -> Self {
        assert!(target_rps > 0.0);
        let current = self.mean_rps();
        if current <= 0.0 {
            return self;
        }
        let factor = current / target_rps;
        for a in &mut self.arrivals {
            a.time_ms *= factor;
        }
        self
    }

    /// Per-bucket arrival counts (for regenerating Figs. 7 and 13).
    ///
    /// Returns `(bucket_start_ms, total, per_category)` rows, where
    /// unpinned arrivals count only toward the total.
    pub fn bucket_counts(&self, bucket_ms: f64) -> Vec<(f64, usize, [usize; 3])> {
        assert!(bucket_ms > 0.0);
        let Some(last) = self.arrivals.last() else {
            return Vec::new();
        };
        let buckets = (last.time_ms / bucket_ms).floor() as usize + 1;
        let mut rows = vec![(0.0, 0usize, [0usize; 3]); buckets];
        for (i, row) in rows.iter_mut().enumerate() {
            row.0 = i as f64 * bucket_ms;
        }
        for a in &self.arrivals {
            let b = (a.time_ms / bucket_ms).floor() as usize;
            rows[b].1 += 1;
            if let Some(c) = a.category {
                rows[b].2[c.index()] += 1;
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_hits_target_rate() {
        let t = ArrivalTrace::poisson(1, 5.0, 300_000.0);
        assert!((t.mean_rps() - 5.0).abs() < 0.5, "rps = {}", t.mean_rps());
    }

    #[test]
    fn real_world_spans_twenty_minutes() {
        let t = ArrivalTrace::generate(TraceKind::RealWorld, 2);
        let last = t.arrivals().last().unwrap().time_ms;
        assert!(last > 18.0 * 60.0 * 1e3, "last arrival at {last} ms");
        assert!(last <= 20.0 * 60.0 * 1e3);
        // Bursty: the busiest bucket is much busier than the median one.
        let counts: Vec<usize> = t.bucket_counts(10_000.0).iter().map(|r| r.1).collect();
        let max = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        assert!(
            max as f64 > 1.8 * median as f64,
            "max {max} vs median {median}"
        );
    }

    #[test]
    fn synthetic_categories_peak_in_order() {
        let t = ArrivalTrace::generate(TraceKind::Synthetic, 3);
        let rows = t.bucket_counts(20_000.0);
        let peak_bucket = |c: Category| {
            rows.iter()
                .enumerate()
                .max_by_key(|(_, r)| r.2[c.index()])
                .map(|(i, _)| i)
                .unwrap()
        };
        let chat = peak_bucket(Category::Chatbot);
        let code = peak_bucket(Category::CodingCopilot);
        let summ = peak_bucket(Category::Summarization);
        assert!(
            chat < code && code < summ,
            "peaks at {chat}, {code}, {summ}"
        );
    }

    #[test]
    fn synthetic_arrivals_are_pinned() {
        let t = ArrivalTrace::generate(TraceKind::Synthetic, 3);
        assert!(t.arrivals().iter().all(|a| a.category.is_some()));
    }

    #[test]
    fn rescale_changes_rate_not_count() {
        let t = ArrivalTrace::generate(TraceKind::RealWorld, 4);
        let n = t.len();
        let t4 = t.rescale_to_rps(4.0);
        assert_eq!(t4.len(), n);
        assert!((t4.mean_rps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn truncate_drops_late_arrivals() {
        let t = ArrivalTrace::generate(TraceKind::RealWorld, 4).truncate(60_000.0);
        assert!(t.arrivals().iter().all(|a| a.time_ms <= 60_000.0));
        assert!(!t.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ArrivalTrace::generate(TraceKind::Synthetic, 5);
        let b = ArrivalTrace::generate(TraceKind::Synthetic, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_are_sorted() {
        for kind in [
            TraceKind::RealWorld,
            TraceKind::Synthetic,
            TraceKind::Poisson {
                rps: 2.0,
                duration_ms: 30_000.0,
            },
        ] {
            let t = ArrivalTrace::generate(kind, 6);
            for w in t.arrivals().windows(2) {
                assert!(w[0].time_ms <= w[1].time_ms);
            }
        }
    }
}
