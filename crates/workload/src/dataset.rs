//! Per-category prompt/output length distributions.
//!
//! The paper samples real prompts: HumanEval (164 programming problems),
//! Alpaca (52k instruction examples) and CNN/DailyMail articles. Only the
//! *length statistics* of those datasets reach the serving layer (token
//! content is produced by the synthetic LM), so this module reproduces the
//! published length profiles with clipped log-normal samplers:
//!
//! | dataset        | prompt tokens (median) | output tokens (median) |
//! |----------------|------------------------|------------------------|
//! | HumanEval      | ~170                   | ~90                    |
//! | Alpaca         | ~45                    | ~140                   |
//! | CNN/DailyMail  | ~1100                  | ~70                    |

use crate::category::Category;
use simllm::hash::{combine, unit_f64};

/// Parameters of one clipped log-normal length distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthDist {
    /// Median length (the log-normal's exp(μ)).
    pub median: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
    /// Inclusive lower clip.
    pub min: u32,
    /// Inclusive upper clip.
    pub max: u32,
}

impl LengthDist {
    /// Samples a length from the distribution at uniform draws `u1, u2`.
    fn sample(&self, u1: f64, u2: f64) -> u32 {
        // Box-Muller; guard u1 away from 0.
        let u1 = u1.max(1e-12);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = self.median * (self.sigma * z).exp();
        (v.round() as i64).clamp(i64::from(self.min), i64::from(self.max)) as u32
    }
}

/// Deterministic per-category length sampler.
#[derive(Debug, Clone, Copy)]
pub struct LengthSampler {
    seed: u64,
}

impl LengthSampler {
    /// Creates a sampler; all draws are pure functions of `(seed, request)`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Prompt-length distribution for `category`.
    pub fn prompt_dist(category: Category) -> LengthDist {
        match category {
            Category::CodingCopilot => LengthDist {
                median: 170.0,
                sigma: 0.45,
                min: 40,
                max: 800,
            },
            Category::Chatbot => LengthDist {
                median: 45.0,
                sigma: 0.70,
                min: 8,
                max: 400,
            },
            Category::Summarization => LengthDist {
                median: 1100.0,
                sigma: 0.50,
                min: 250,
                max: 4000,
            },
        }
    }

    /// Output-length distribution for `category`.
    pub fn output_dist(category: Category) -> LengthDist {
        match category {
            Category::CodingCopilot => LengthDist {
                median: 90.0,
                sigma: 0.55,
                min: 16,
                max: 512,
            },
            Category::Chatbot => LengthDist {
                median: 140.0,
                sigma: 0.60,
                min: 16,
                max: 768,
            },
            Category::Summarization => LengthDist {
                median: 70.0,
                sigma: 0.40,
                min: 24,
                max: 256,
            },
        }
    }

    /// Samples `(prompt_len, output_len)` for request `rid`.
    pub fn sample(&self, category: Category, rid: u64) -> (u32, u32) {
        let h = combine(self.seed, rid);
        let prompt = Self::prompt_dist(category).sample(
            unit_f64(simllm::hash::seed_stream(h, 0)),
            unit_f64(simllm::hash::seed_stream(h, 1)),
        );
        let output = Self::output_dist(category).sample(
            unit_f64(simllm::hash::seed_stream(h, 2)),
            unit_f64(simllm::hash::seed_stream(h, 3)),
        );
        (prompt, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_lengths(category: Category) -> (f64, f64) {
        let s = LengthSampler::new(3);
        let n = 4000u64;
        let mut sp = 0.0;
        let mut so = 0.0;
        for rid in 0..n {
            let (p, o) = s.sample(category, rid);
            sp += f64::from(p) / n as f64;
            so += f64::from(o) / n as f64;
        }
        (sp, so)
    }

    #[test]
    fn lengths_respect_clips() {
        let s = LengthSampler::new(3);
        for rid in 0..2000 {
            for c in Category::ALL {
                let (p, o) = s.sample(c, rid);
                let pd = LengthSampler::prompt_dist(c);
                let od = LengthSampler::output_dist(c);
                assert!(p >= pd.min && p <= pd.max);
                assert!(o >= od.min && o <= od.max);
            }
        }
    }

    #[test]
    fn summarization_prompts_are_long() {
        let (p_sum, _) = mean_lengths(Category::Summarization);
        let (p_chat, _) = mean_lengths(Category::Chatbot);
        assert!(p_sum > 8.0 * p_chat, "sum {p_sum} vs chat {p_chat}");
    }

    #[test]
    fn medians_land_near_targets() {
        let (p, o) = mean_lengths(Category::CodingCopilot);
        // Log-normal mean exceeds the median; just check the ballpark.
        assert!(p > 140.0 && p < 260.0, "coding prompt mean = {p}");
        assert!(o > 70.0 && o < 160.0, "coding output mean = {o}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = LengthSampler::new(9);
        assert_eq!(
            s.sample(Category::Chatbot, 5),
            s.sample(Category::Chatbot, 5)
        );
        assert_ne!(
            s.sample(Category::Chatbot, 5),
            s.sample(Category::Chatbot, 6)
        );
    }
}
