//! Category mixing: sampling a request category per arrival.

use crate::category::Category;
use simllm::hash::unit_f64;
use std::fmt;

/// A probability distribution over the three request categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryMix {
    /// Probabilities in [`Category::ALL`] order; sums to 1.
    probs: [f64; 3],
}

impl CategoryMix {
    /// Creates a mix from per-category probabilities.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are negative or do not sum to 1 (±1e-9).
    pub fn new(coding: f64, chat: f64, summarization: f64) -> Self {
        let probs = [coding, chat, summarization];
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "mix must sum to 1, got {sum}");
        Self { probs }
    }

    /// The paper's end-to-end mix: 60% coding, 20% chat, 20% summarization
    /// ("a peak load scenario for latency-critical tasks", §6.2).
    pub fn paper_default() -> Self {
        Self::new(0.6, 0.2, 0.2)
    }

    /// Fig. 10's sweep: `urgent` fraction of coding requests, remainder split
    /// evenly between chat and summarization.
    pub fn with_urgent_fraction(urgent: f64) -> Self {
        assert!((0.0..=1.0).contains(&urgent));
        let rest = (1.0 - urgent) / 2.0;
        Self::new(urgent, rest, rest)
    }

    /// Fig. 1's motivation workload: two categories only (coding + chat).
    pub fn two_category() -> Self {
        Self::new(0.5, 0.5, 0.0)
    }

    /// Probability of `category`.
    pub fn prob(&self, category: Category) -> f64 {
        self.probs[category.index()]
    }

    /// Samples a category from a 64-bit hash.
    pub fn sample(&self, h: u64) -> Category {
        let u = unit_f64(h);
        let mut acc = 0.0;
        for c in Category::ALL {
            acc += self.probs[c.index()];
            if u < acc {
                return c;
            }
        }
        Category::Summarization
    }
}

impl fmt::Display for CategoryMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}/{:.0}/{:.0}",
            self.probs[0] * 100.0,
            self.probs[1] * 100.0,
            self.probs[2] * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::hash::seed_stream;

    #[test]
    fn paper_default_is_60_20_20() {
        let m = CategoryMix::paper_default();
        assert_eq!(m.prob(Category::CodingCopilot), 0.6);
        assert_eq!(m.prob(Category::Chatbot), 0.2);
        assert_eq!(m.prob(Category::Summarization), 0.2);
    }

    #[test]
    fn urgent_fraction_splits_remainder() {
        let m = CategoryMix::with_urgent_fraction(0.9);
        assert!((m.prob(Category::Chatbot) - 0.05).abs() < 1e-12);
        assert!((m.prob(Category::Summarization) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn sampling_converges_to_mix() {
        let m = CategoryMix::with_urgent_fraction(0.3);
        let n = 50_000u64;
        let mut counts = [0usize; 3];
        for i in 0..n {
            counts[m.sample(seed_stream(42, i)).index()] += 1;
        }
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.3).abs() < 0.01, "urgent fraction = {frac0}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        let _ = CategoryMix::new(0.5, 0.2, 0.2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CategoryMix::paper_default().to_string(), "60/20/20");
    }
}
