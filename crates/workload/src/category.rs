//! Request categories and their TPOT SLOs (paper Table 2).

use simllm::ContentClass;
use std::fmt;

/// Default SLO scale of the coding-copilot category: 1.2× baseline latency.
pub const CAT1_BASELINE_SCALE: f64 = 1.2;

/// Chatbot TPOT SLO in milliseconds (slightly under human skimming speed).
pub const CHATBOT_SLO_MS: f64 = 50.0;

/// Summarization TPOT SLO in milliseconds (relaxed, per MLPerf/DistServe).
pub const SUMMARIZATION_SLO_MS: f64 = 150.0;

/// Coding-copilot TTFT SLO in milliseconds: a completion popping up inside
/// an editor must feel instant (DistServe-style interactive tier).
pub const CODING_TTFT_SLO_MS: f64 = 400.0;

/// Chatbot TTFT SLO in milliseconds (a chat turn tolerates ~1 s to first
/// token before it feels stalled).
pub const CHATBOT_TTFT_SLO_MS: f64 = 1_200.0;

/// Summarization TTFT SLO in milliseconds: long articles queue behind
/// interactive traffic, so the batch tier gets a multi-second budget.
pub const SUMMARIZATION_TTFT_SLO_MS: f64 = 8_000.0;

/// The three application categories of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Category 1 — interactive code completion (HumanEval prompts).
    ///
    /// SLO: 1.2× the near-zero-load baseline decode latency, "a stringent
    /// target that permits a 20% slowdown" aligned with MLPerf v5.0's 40 ms
    /// per token for Llama-70B interactive serving.
    CodingCopilot,
    /// Category 2 — chatbot (Alpaca instructions). SLO: 50 ms/token.
    Chatbot,
    /// Category 3 — summarization (CNN/DailyMail articles). SLO: 150 ms/token.
    Summarization,
}

/// A TPOT service-level objective, either absolute or baseline-relative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloSpec {
    /// Fixed TPOT bound in milliseconds.
    AbsoluteMs(f64),
    /// Multiple of the testbed's near-zero-load decode latency.
    RelativeToBaseline(f64),
}

impl SloSpec {
    /// Resolves to milliseconds given the testbed baseline.
    pub fn resolve(&self, baseline_ms: f64) -> f64 {
        match *self {
            SloSpec::AbsoluteMs(ms) => ms,
            SloSpec::RelativeToBaseline(scale) => baseline_ms * scale,
        }
    }
}

impl Category {
    /// All categories in Table 2 order.
    pub const ALL: [Category; 3] = [
        Category::CodingCopilot,
        Category::Chatbot,
        Category::Summarization,
    ];

    /// Stable index (0, 1, 2) in Table 2 order.
    pub fn index(self) -> usize {
        match self {
            Category::CodingCopilot => 0,
            Category::Chatbot => 1,
            Category::Summarization => 2,
        }
    }

    /// The category's SLO per Table 2.
    pub fn slo(self) -> SloSpec {
        match self {
            Category::CodingCopilot => SloSpec::RelativeToBaseline(CAT1_BASELINE_SCALE),
            Category::Chatbot => SloSpec::AbsoluteMs(CHATBOT_SLO_MS),
            Category::Summarization => SloSpec::AbsoluteMs(SUMMARIZATION_SLO_MS),
        }
    }

    /// The category's TTFT SLO (time to first token, arrival → first
    /// decode step).
    ///
    /// The paper's attainment criterion is TPOT-only (§3); TTFT targets
    /// enter with the disaggregated deployment mode, where prefill/decode
    /// interference is the quantity under study. Values follow the
    /// DistServe/SLOs-Serve convention of fixed per-application targets.
    pub fn ttft_slo(self) -> SloSpec {
        match self {
            Category::CodingCopilot => SloSpec::AbsoluteMs(CODING_TTFT_SLO_MS),
            Category::Chatbot => SloSpec::AbsoluteMs(CHATBOT_TTFT_SLO_MS),
            Category::Summarization => SloSpec::AbsoluteMs(SUMMARIZATION_TTFT_SLO_MS),
        }
    }

    /// Whether this is the latency-stringent ("urgent") category.
    pub fn is_urgent(self) -> bool {
        matches!(self, Category::CodingCopilot)
    }

    /// The content class driving the synthetic LM's statistics.
    pub fn content_class(self) -> ContentClass {
        match self {
            Category::CodingCopilot => ContentClass::Code,
            Category::Chatbot => ContentClass::Chat,
            Category::Summarization => ContentClass::News,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::CodingCopilot => "coding",
            Category::Chatbot => "chat",
            Category::Summarization => "summarization",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slos_match_table_2() {
        let baseline = 30.0;
        assert!((Category::CodingCopilot.slo().resolve(baseline) - 36.0).abs() < 1e-12);
        assert_eq!(Category::Chatbot.slo().resolve(baseline), 50.0);
        assert_eq!(Category::Summarization.slo().resolve(baseline), 150.0);
    }

    #[test]
    fn ttft_slos_tighten_with_interactivity() {
        let coding = Category::CodingCopilot.ttft_slo().resolve(30.0);
        let chat = Category::Chatbot.ttft_slo().resolve(30.0);
        let sum = Category::Summarization.ttft_slo().resolve(30.0);
        assert!(coding < chat && chat < sum);
        assert_eq!(coding, CODING_TTFT_SLO_MS);
    }

    #[test]
    fn only_coding_is_urgent() {
        assert!(Category::CodingCopilot.is_urgent());
        assert!(!Category::Chatbot.is_urgent());
        assert!(!Category::Summarization.is_urgent());
    }

    #[test]
    fn indices_are_stable() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn content_classes_map_to_datasets() {
        assert_eq!(Category::CodingCopilot.content_class(), ContentClass::Code);
        assert_eq!(Category::Chatbot.content_class(), ContentClass::Chat);
        assert_eq!(Category::Summarization.content_class(), ContentClass::News);
    }
}
