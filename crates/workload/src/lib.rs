//! Multi-SLO workloads: request categories, datasets and arrival traces.
//!
//! Reproduces the paper's evaluation workloads (§6.1, Tables 2 and Figs. 7
//! and 13):
//!
//! * three request **categories** with distinct TPOT SLOs — coding copilot
//!   (1.2× baseline latency), chatbot (50 ms) and summarization (150 ms);
//! * per-category **datasets** whose prompt/output length statistics match
//!   the public datasets the paper samples (HumanEval, Alpaca,
//!   CNN/DailyMail);
//! * arrival **traces**: a bursty real-world-shaped trace (Fig. 7, from the
//!   Splitwise production trace), a staggered-peak synthetic trace (Fig. 13)
//!   and plain Poisson arrivals — all truncatable and rescalable to a target
//!   request rate exactly as the paper describes.
//!
//! The output of this crate is a [`Workload`]: a time-ordered list of
//! [`RequestSpec`]s that every serving engine consumes identically.

pub mod category;
pub mod dataset;
pub mod mix;
pub mod spec;
pub mod trace;

pub use category::{Category, SloSpec};
pub use dataset::LengthSampler;
pub use mix::CategoryMix;
pub use spec::{PrefixSpec, RequestSpec};
pub use trace::{ArrivalTrace, TraceKind};

use simllm::hash::{combine, seed_stream, unit_f64};

/// Resolves the experiment seed: `ADASERVE_SEED` if set, else `default`.
///
/// Every example and bench binary threads its seed through this helper so
/// one environment variable reproduces (or perturbs) an entire run — CI
/// smoke runs export it explicitly and log it. A malformed value aborts
/// rather than silently falling back, so a typo cannot masquerade as a
/// reproducible run.
pub fn env_seed(default: u64) -> u64 {
    match std::env::var("ADASERVE_SEED") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("ADASERVE_SEED must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

/// Duration every `ADASERVE_SMOKE` run is clamped to, in milliseconds.
pub const SMOKE_DURATION_MS: f64 = 3_000.0;

/// Scales an experiment's `(rps, duration_ms)` shape down to CI smoke
/// size when `ADASERVE_SMOKE` is set; returns the inputs unchanged
/// otherwise.
///
/// Under smoke, the request rate is halved (floored at 2 rps so every
/// engine still batches) and the duration clamps to
/// [`SMOKE_DURATION_MS`] — a few simulated seconds, enough for the CI
/// smoke tests to exercise an example end to end. Every workload-driven
/// example resolves its scale through this one helper so smoke sizing
/// cannot drift between them.
pub fn smoke_scale(rps: f64, duration_ms: f64) -> (f64, f64) {
    assert!(rps > 0.0 && duration_ms > 0.0);
    if std::env::var_os("ADASERVE_SMOKE").is_some() {
        ((rps * 0.5).max(2.0), duration_ms.min(SMOKE_DURATION_MS))
    } else {
        (rps, duration_ms)
    }
}

/// A complete, reproducible multi-SLO workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Requests sorted by arrival time.
    pub requests: Vec<RequestSpec>,
    /// Human-readable description (used by experiment harnesses).
    pub description: String,
}

impl Workload {
    /// Average request rate over the workload's span, in requests/second.
    pub fn mean_rps(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let span_ms = self.requests.last().expect("non-empty").arrival_ms
            - self.requests.first().expect("non-empty").arrival_ms;
        if span_ms <= 0.0 {
            return 0.0;
        }
        (self.requests.len() - 1) as f64 / (span_ms / 1e3)
    }

    /// Number of requests per category, in [`Category::ALL`] order.
    pub fn category_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for r in &self.requests {
            counts[r.category.index()] += 1;
        }
        counts
    }
}

/// Builder assembling a [`Workload`] from a trace, a mix and datasets.
///
/// `baseline_ms` is the near-zero-load decode latency of the serving testbed,
/// needed to resolve the coding-copilot SLO (1.2× baseline, Table 2).
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    seed: u64,
    baseline_ms: f64,
    mix: CategoryMix,
    trace: TraceKind,
    target_rps: Option<f64>,
    duration_ms: Option<f64>,
    cat1_slo_scale: f64,
    ttft_slo_scale: f64,
    shared_prefix: Option<(u32, f64)>,
    multi_turn: Option<(usize, u32)>,
}

impl WorkloadBuilder {
    /// Creates a builder with the paper's default 60/20/20 mix.
    pub fn new(seed: u64, baseline_ms: f64) -> Self {
        Self {
            seed,
            baseline_ms,
            mix: CategoryMix::paper_default(),
            trace: TraceKind::RealWorld,
            target_rps: None,
            duration_ms: None,
            cat1_slo_scale: category::CAT1_BASELINE_SCALE,
            ttft_slo_scale: 1.0,
            shared_prefix: None,
            multi_turn: None,
        }
    }

    /// Prepends a shared system prompt of `len` tokens to a `share`
    /// fraction of requests (sampled per request from the builder seed).
    ///
    /// Sharing requests carry a [`PrefixSpec`] with one common seed, so
    /// their first `len` prompt tokens are byte-identical — the traffic
    /// shape a cross-request prefix cache exists for. The remaining
    /// requests (and the sharing requests' suffixes) keep fully private
    /// token streams. Mutually exclusive with
    /// [`WorkloadBuilder::multi_turn`].
    pub fn shared_system_prompt(mut self, len: u32, share: f64) -> Self {
        assert!(len > 0, "a system prompt has at least one token");
        assert!((0.0..=1.0).contains(&share), "share is a fraction");
        self.shared_prefix = Some((len, share));
        self
    }

    /// Folds the request stream into `sessions` multi-turn conversations
    /// whose contexts grow monotonically, capped at `max_context` tokens.
    ///
    /// Requests are assigned to sessions round-robin by id. Every turn of
    /// a session draws its prompt from the *session's* token stream and
    /// extends the previous turn's prompt (new prompt length = previous
    /// length + this turn's sampled prompt, clamped to `max_context`), so
    /// turn *k*'s prompt is literally a prefix of turn *k + 1*'s — the
    /// multi-turn chat shape. Each turn's [`PrefixSpec`] records the
    /// previous turn's length as the shared portion. Mutually exclusive
    /// with [`WorkloadBuilder::shared_system_prompt`].
    pub fn multi_turn(mut self, sessions: usize, max_context: u32) -> Self {
        assert!(sessions > 0, "at least one session");
        assert!(max_context > 0, "a context cap of at least one token");
        self.multi_turn = Some((sessions, max_context));
        self
    }

    /// Sets the category mix.
    pub fn mix(mut self, mix: CategoryMix) -> Self {
        self.mix = mix;
        self
    }

    /// Selects the arrival trace.
    pub fn trace(mut self, trace: TraceKind) -> Self {
        self.trace = trace;
        self
    }

    /// Rescales the trace to this average request rate.
    pub fn target_rps(mut self, rps: f64) -> Self {
        assert!(rps > 0.0);
        self.target_rps = Some(rps);
        self
    }

    /// Truncates the trace to this duration.
    pub fn duration_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0);
        self.duration_ms = Some(ms);
        self
    }

    /// Overrides the coding-copilot SLO scale (Fig. 11's sweep variable).
    ///
    /// The default is 1.2 (Table 2); Fig. 11 sweeps 1.6 down to 0.6.
    pub fn cat1_slo_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.cat1_slo_scale = scale;
        self
    }

    /// Scales every category's TTFT SLO (disaggregation sweeps' knob).
    ///
    /// The default is 1.0 (the per-category targets of
    /// [`Category::ttft_slo`]); values below 1 tighten the first-token
    /// deadline uniformly.
    pub fn ttft_slo_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.ttft_slo_scale = scale;
        self
    }

    /// Materializes the workload.
    pub fn build(&self) -> Workload {
        assert!(
            self.shared_prefix.is_none() || self.multi_turn.is_none(),
            "shared_system_prompt and multi_turn are mutually exclusive"
        );
        // Rescale first, then truncate: the duration then selects how much
        // of the (already target-rate) trace is served, so request counts
        // scale with duration × RPS as in the paper's methodology.
        let mut arrivals = ArrivalTrace::generate(self.trace, seed_stream(self.seed, 1));
        if let Some(rps) = self.target_rps {
            arrivals = arrivals.rescale_to_rps(rps);
        }
        if let Some(d) = self.duration_ms {
            arrivals = arrivals.truncate(d);
        }
        let sampler = LengthSampler::new(seed_stream(self.seed, 2));
        let mut requests = Vec::with_capacity(arrivals.len());
        // Per-session context length so far (multi-turn generator state).
        let mut session_ctx: Vec<u32> = self
            .multi_turn
            .map_or(Vec::new(), |(sessions, _)| vec![0; sessions]);
        for (i, arrival) in arrivals.arrivals().iter().enumerate() {
            let rid = i as u64;
            let arrival_ms = arrival.time_ms;
            // Synthetic-trace arrivals pin their category (Fig. 13); other
            // traces sample from the configured mix.
            let category = arrival
                .category
                .unwrap_or_else(|| self.mix.sample(combine(seed_stream(self.seed, 3), rid)));
            let (prompt_len, output_len) = sampler.sample(category, rid);
            let slo = category.slo();
            let tpot_slo_ms = match category {
                Category::CodingCopilot => self.baseline_ms * self.cat1_slo_scale,
                _ => slo.resolve(self.baseline_ms),
            };
            let ttft_slo_ms = category.ttft_slo().resolve(self.baseline_ms) * self.ttft_slo_scale;
            let mut stream_seed = combine(seed_stream(self.seed, 4), rid);
            let mut prompt_len = prompt_len;
            let mut prefix = None;
            if let Some((sessions, max_context)) = self.multi_turn {
                let sid = rid % sessions as u64;
                // One content stream per session: every turn's prompt is
                // drawn from it, so later turns literally extend earlier
                // ones (the prefix records the already-seen portion).
                let session_seed = combine(seed_stream(self.seed, 7), sid);
                let prev = session_ctx[sid as usize];
                stream_seed = session_seed;
                prompt_len = prev.saturating_add(prompt_len).min(max_context).max(1);
                prefix = Some(PrefixSpec {
                    seed: session_seed,
                    len: prev,
                });
                session_ctx[sid as usize] = prompt_len;
            } else if let Some((len, share)) = self.shared_prefix {
                if unit_f64(combine(seed_stream(self.seed, 5), rid)) < share {
                    prompt_len = prompt_len.saturating_add(len);
                    prefix = Some(PrefixSpec {
                        seed: seed_stream(self.seed, 6),
                        len,
                    });
                }
            }
            requests.push(RequestSpec {
                id: rid,
                category,
                arrival_ms,
                prompt_len,
                output_len,
                tpot_slo_ms,
                ttft_slo_ms,
                stream_seed,
                prefix,
            });
        }
        Workload {
            requests,
            description: format!(
                "{:?} trace, mix {}, {} requests, mean {:.2} rps",
                self.trace,
                self.mix,
                arrivals.len(),
                arrivals.mean_rps()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_sorted_requests() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(2.0)
            .duration_ms(60_000.0)
            .build();
        assert!(!w.requests.is_empty());
        for pair in w.requests.windows(2) {
            assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
        }
    }

    #[test]
    fn rescaling_hits_target_rate() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(4.0)
            .duration_ms(120_000.0)
            .build();
        let rps = w.mean_rps();
        assert!((rps - 4.0).abs() < 0.4, "rps = {rps}");
    }

    #[test]
    fn mix_fractions_converge() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(20.0)
            .duration_ms(300_000.0)
            .build();
        let counts = w.category_counts();
        let total: usize = counts.iter().sum();
        let frac1 = counts[0] as f64 / total as f64;
        assert!((frac1 - 0.6).abs() < 0.05, "cat1 fraction = {frac1}");
    }

    #[test]
    fn slo_scale_applies_to_cat1_only() {
        let w = WorkloadBuilder::new(7, 30.0)
            .cat1_slo_scale(0.8)
            .target_rps(5.0)
            .duration_ms(120_000.0)
            .build();
        for r in &w.requests {
            match r.category {
                Category::CodingCopilot => assert!((r.tpot_slo_ms - 24.0).abs() < 1e-9),
                Category::Chatbot => assert!((r.tpot_slo_ms - 50.0).abs() < 1e-9),
                Category::Summarization => assert!((r.tpot_slo_ms - 150.0).abs() < 1e-9),
            }
        }
    }

    #[test]
    fn ttft_slos_resolve_per_category_and_scale() {
        let w = WorkloadBuilder::new(7, 30.0)
            .ttft_slo_scale(0.5)
            .target_rps(5.0)
            .duration_ms(120_000.0)
            .build();
        for r in &w.requests {
            let expect = r.category.ttft_slo().resolve(30.0) * 0.5;
            assert!((r.ttft_slo_ms - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let a = WorkloadBuilder::new(11, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        let b = WorkloadBuilder::new(11, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn shared_system_prompt_marks_a_share_of_requests() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(10.0)
            .duration_ms(120_000.0)
            .shared_system_prompt(64, 0.7)
            .build();
        let shared: Vec<&RequestSpec> = w.requests.iter().filter(|r| r.prefix.is_some()).collect();
        let frac = shared.len() as f64 / w.requests.len() as f64;
        assert!((frac - 0.7).abs() < 0.1, "share = {frac}");
        // Every sharing request agrees on the first 64 prompt tokens.
        let head = shared[0].prompt_tokens()[..64].to_vec();
        for r in &shared {
            assert_eq!(r.shared_prefix_len(), 64);
            assert_eq!(r.prompt_tokens()[..64], head[..]);
        }
        // Non-sharing requests do not accidentally carry the prefix.
        let private = w.requests.iter().find(|r| r.prefix.is_none()).unwrap();
        assert_ne!(private.prompt_tokens()[..8], head[..8]);
    }

    #[test]
    fn multi_turn_sessions_grow_monotonic_shared_prefixes() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(4.0)
            .duration_ms(60_000.0)
            .multi_turn(4, 100_000)
            .build();
        assert!(w.requests.len() >= 16, "enough turns to exercise sessions");
        let mut last: std::collections::HashMap<u64, (u32, Vec<simllm::TokenId>)> =
            std::collections::HashMap::new();
        for r in &w.requests {
            let sid = r.id % 4;
            let tokens = r.prompt_tokens();
            if let Some((prev_len, prev_tokens)) = last.get(&sid) {
                assert!(
                    r.prompt_len > *prev_len,
                    "session {sid} context grows every turn"
                );
                assert_eq!(
                    r.shared_prefix_len(),
                    *prev_len,
                    "prefix records the already-seen portion"
                );
                assert_eq!(
                    &tokens[..*prev_len as usize],
                    &prev_tokens[..],
                    "turn k's prompt is a prefix of turn k+1's"
                );
            } else {
                assert_eq!(r.shared_prefix_len(), 0, "first turn shares nothing");
            }
            last.insert(sid, (r.prompt_len, tokens));
        }
    }

    #[test]
    fn multi_turn_context_clamps_at_cap() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(8.0)
            .duration_ms(120_000.0)
            .multi_turn(1, 500)
            .build();
        assert!(w.requests.iter().all(|r| r.prompt_len <= 500));
        assert_eq!(w.requests.last().unwrap().prompt_len, 500, "cap reached");
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadBuilder::new(11, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        let b = WorkloadBuilder::new(12, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        assert_ne!(a.requests, b.requests);
    }
}
