//! Multi-SLO workloads: request categories, datasets and arrival traces.
//!
//! Reproduces the paper's evaluation workloads (§6.1, Tables 2 and Figs. 7
//! and 13):
//!
//! * three request **categories** with distinct TPOT SLOs — coding copilot
//!   (1.2× baseline latency), chatbot (50 ms) and summarization (150 ms);
//! * per-category **datasets** whose prompt/output length statistics match
//!   the public datasets the paper samples (HumanEval, Alpaca,
//!   CNN/DailyMail);
//! * arrival **traces**: a bursty real-world-shaped trace (Fig. 7, from the
//!   Splitwise production trace), a staggered-peak synthetic trace (Fig. 13)
//!   and plain Poisson arrivals — all truncatable and rescalable to a target
//!   request rate exactly as the paper describes.
//!
//! The output of this crate is a [`Workload`]: a time-ordered list of
//! [`RequestSpec`]s that every serving engine consumes identically.

pub mod category;
pub mod dataset;
pub mod mix;
pub mod spec;
pub mod trace;

pub use category::{Category, SloSpec};
pub use dataset::LengthSampler;
pub use mix::CategoryMix;
pub use spec::RequestSpec;
pub use trace::{ArrivalTrace, TraceKind};

use simllm::hash::{combine, seed_stream};

/// Resolves the experiment seed: `ADASERVE_SEED` if set, else `default`.
///
/// Every example and bench binary threads its seed through this helper so
/// one environment variable reproduces (or perturbs) an entire run — CI
/// smoke runs export it explicitly and log it. A malformed value aborts
/// rather than silently falling back, so a typo cannot masquerade as a
/// reproducible run.
pub fn env_seed(default: u64) -> u64 {
    match std::env::var("ADASERVE_SEED") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("ADASERVE_SEED must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

/// Duration every `ADASERVE_SMOKE` run is clamped to, in milliseconds.
pub const SMOKE_DURATION_MS: f64 = 3_000.0;

/// Scales an experiment's `(rps, duration_ms)` shape down to CI smoke
/// size when `ADASERVE_SMOKE` is set; returns the inputs unchanged
/// otherwise.
///
/// Under smoke, the request rate is halved (floored at 2 rps so every
/// engine still batches) and the duration clamps to
/// [`SMOKE_DURATION_MS`] — a few simulated seconds, enough for the CI
/// smoke tests to exercise an example end to end. Every workload-driven
/// example resolves its scale through this one helper so smoke sizing
/// cannot drift between them.
pub fn smoke_scale(rps: f64, duration_ms: f64) -> (f64, f64) {
    assert!(rps > 0.0 && duration_ms > 0.0);
    if std::env::var_os("ADASERVE_SMOKE").is_some() {
        ((rps * 0.5).max(2.0), duration_ms.min(SMOKE_DURATION_MS))
    } else {
        (rps, duration_ms)
    }
}

/// A complete, reproducible multi-SLO workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Requests sorted by arrival time.
    pub requests: Vec<RequestSpec>,
    /// Human-readable description (used by experiment harnesses).
    pub description: String,
}

impl Workload {
    /// Average request rate over the workload's span, in requests/second.
    pub fn mean_rps(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let span_ms = self.requests.last().expect("non-empty").arrival_ms
            - self.requests.first().expect("non-empty").arrival_ms;
        if span_ms <= 0.0 {
            return 0.0;
        }
        (self.requests.len() - 1) as f64 / (span_ms / 1e3)
    }

    /// Number of requests per category, in [`Category::ALL`] order.
    pub fn category_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for r in &self.requests {
            counts[r.category.index()] += 1;
        }
        counts
    }
}

/// Builder assembling a [`Workload`] from a trace, a mix and datasets.
///
/// `baseline_ms` is the near-zero-load decode latency of the serving testbed,
/// needed to resolve the coding-copilot SLO (1.2× baseline, Table 2).
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    seed: u64,
    baseline_ms: f64,
    mix: CategoryMix,
    trace: TraceKind,
    target_rps: Option<f64>,
    duration_ms: Option<f64>,
    cat1_slo_scale: f64,
    ttft_slo_scale: f64,
}

impl WorkloadBuilder {
    /// Creates a builder with the paper's default 60/20/20 mix.
    pub fn new(seed: u64, baseline_ms: f64) -> Self {
        Self {
            seed,
            baseline_ms,
            mix: CategoryMix::paper_default(),
            trace: TraceKind::RealWorld,
            target_rps: None,
            duration_ms: None,
            cat1_slo_scale: category::CAT1_BASELINE_SCALE,
            ttft_slo_scale: 1.0,
        }
    }

    /// Sets the category mix.
    pub fn mix(mut self, mix: CategoryMix) -> Self {
        self.mix = mix;
        self
    }

    /// Selects the arrival trace.
    pub fn trace(mut self, trace: TraceKind) -> Self {
        self.trace = trace;
        self
    }

    /// Rescales the trace to this average request rate.
    pub fn target_rps(mut self, rps: f64) -> Self {
        assert!(rps > 0.0);
        self.target_rps = Some(rps);
        self
    }

    /// Truncates the trace to this duration.
    pub fn duration_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0);
        self.duration_ms = Some(ms);
        self
    }

    /// Overrides the coding-copilot SLO scale (Fig. 11's sweep variable).
    ///
    /// The default is 1.2 (Table 2); Fig. 11 sweeps 1.6 down to 0.6.
    pub fn cat1_slo_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.cat1_slo_scale = scale;
        self
    }

    /// Scales every category's TTFT SLO (disaggregation sweeps' knob).
    ///
    /// The default is 1.0 (the per-category targets of
    /// [`Category::ttft_slo`]); values below 1 tighten the first-token
    /// deadline uniformly.
    pub fn ttft_slo_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.ttft_slo_scale = scale;
        self
    }

    /// Materializes the workload.
    pub fn build(&self) -> Workload {
        // Rescale first, then truncate: the duration then selects how much
        // of the (already target-rate) trace is served, so request counts
        // scale with duration × RPS as in the paper's methodology.
        let mut arrivals = ArrivalTrace::generate(self.trace, seed_stream(self.seed, 1));
        if let Some(rps) = self.target_rps {
            arrivals = arrivals.rescale_to_rps(rps);
        }
        if let Some(d) = self.duration_ms {
            arrivals = arrivals.truncate(d);
        }
        let sampler = LengthSampler::new(seed_stream(self.seed, 2));
        let mut requests = Vec::with_capacity(arrivals.len());
        for (i, arrival) in arrivals.arrivals().iter().enumerate() {
            let rid = i as u64;
            let arrival_ms = arrival.time_ms;
            // Synthetic-trace arrivals pin their category (Fig. 13); other
            // traces sample from the configured mix.
            let category = arrival
                .category
                .unwrap_or_else(|| self.mix.sample(combine(seed_stream(self.seed, 3), rid)));
            let (prompt_len, output_len) = sampler.sample(category, rid);
            let slo = category.slo();
            let tpot_slo_ms = match category {
                Category::CodingCopilot => self.baseline_ms * self.cat1_slo_scale,
                _ => slo.resolve(self.baseline_ms),
            };
            let ttft_slo_ms = category.ttft_slo().resolve(self.baseline_ms) * self.ttft_slo_scale;
            requests.push(RequestSpec {
                id: rid,
                category,
                arrival_ms,
                prompt_len,
                output_len,
                tpot_slo_ms,
                ttft_slo_ms,
                stream_seed: combine(seed_stream(self.seed, 4), rid),
            });
        }
        Workload {
            requests,
            description: format!(
                "{:?} trace, mix {}, {} requests, mean {:.2} rps",
                self.trace,
                self.mix,
                arrivals.len(),
                arrivals.mean_rps()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_sorted_requests() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(2.0)
            .duration_ms(60_000.0)
            .build();
        assert!(!w.requests.is_empty());
        for pair in w.requests.windows(2) {
            assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
        }
    }

    #[test]
    fn rescaling_hits_target_rate() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(4.0)
            .duration_ms(120_000.0)
            .build();
        let rps = w.mean_rps();
        assert!((rps - 4.0).abs() < 0.4, "rps = {rps}");
    }

    #[test]
    fn mix_fractions_converge() {
        let w = WorkloadBuilder::new(7, 25.0)
            .target_rps(20.0)
            .duration_ms(300_000.0)
            .build();
        let counts = w.category_counts();
        let total: usize = counts.iter().sum();
        let frac1 = counts[0] as f64 / total as f64;
        assert!((frac1 - 0.6).abs() < 0.05, "cat1 fraction = {frac1}");
    }

    #[test]
    fn slo_scale_applies_to_cat1_only() {
        let w = WorkloadBuilder::new(7, 30.0)
            .cat1_slo_scale(0.8)
            .target_rps(5.0)
            .duration_ms(120_000.0)
            .build();
        for r in &w.requests {
            match r.category {
                Category::CodingCopilot => assert!((r.tpot_slo_ms - 24.0).abs() < 1e-9),
                Category::Chatbot => assert!((r.tpot_slo_ms - 50.0).abs() < 1e-9),
                Category::Summarization => assert!((r.tpot_slo_ms - 150.0).abs() < 1e-9),
            }
        }
    }

    #[test]
    fn ttft_slos_resolve_per_category_and_scale() {
        let w = WorkloadBuilder::new(7, 30.0)
            .ttft_slo_scale(0.5)
            .target_rps(5.0)
            .duration_ms(120_000.0)
            .build();
        for r in &w.requests {
            let expect = r.category.ttft_slo().resolve(30.0) * 0.5;
            assert!((r.ttft_slo_ms - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let a = WorkloadBuilder::new(11, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        let b = WorkloadBuilder::new(11, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadBuilder::new(11, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        let b = WorkloadBuilder::new(12, 25.0)
            .target_rps(3.0)
            .duration_ms(60_000.0)
            .build();
        assert_ne!(a.requests, b.requests);
    }
}
