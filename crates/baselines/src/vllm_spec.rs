//! vLLM with sequence speculative decoding (vLLM-Spec(k)).
//!
//! The paper's strongest baseline: continuous batching plus *static*
//! sequence speculation — every decoding request drafts a fixed-length
//! chain of `k` tokens per iteration, verified by the target model in one
//! batched pass. Static length is the crux of the comparison: it cannot
//! adapt to per-request SLOs (no prioritization) nor to load (at high RPS
//! the fixed chains flood the verifier; at low RPS they under-utilize it) —
//! the behaviour Figs. 8–12 demonstrate.

use crate::common;
use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};
use spectree::{verify_tree, CandidateTree, SpecParams};

/// The vLLM-Spec(k) baseline engine.
#[derive(Debug)]
pub struct VllmSpecEngine {
    core: EngineCore,
    /// Fixed speculation length (the paper evaluates k ∈ {4, 6, 8}).
    spec_len: u32,
}

impl VllmSpecEngine {
    /// Creates the engine with draft-chain length `spec_len`.
    ///
    /// # Panics
    ///
    /// Panics if `spec_len` is zero.
    pub fn new(config: SystemConfig, spec_len: u32) -> Self {
        assert!(spec_len >= 1);
        Self {
            core: EngineCore::new(config),
            spec_len,
        }
    }
}

impl ServingEngine for VllmSpecEngine {
    fn name(&self) -> String {
        format!("vLLM-Spec({})", self.spec_len)
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();
        if let Some(result) = common::full_prefill_pass(&mut self.core, now_ms) {
            return result;
        }

        // Reserve KV for the chain + bonus token per decoding request.
        let ids: Vec<u64> = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .map(|r| r.spec.id)
            .collect();
        let mut surviving = Vec::with_capacity(ids.len());
        for &id in &ids {
            let Some(idx) = self.core.running.iter().position(|r| r.spec.id == id) else {
                continue;
            };
            if self
                .core
                .grow_with_preemption(idx, u64::from(self.spec_len) + 1)
            {
                surviving.push(id);
            } else {
                self.core.preempt(idx);
            }
        }
        surviving.retain(|&id| self.core.running.iter().any(|r| r.spec.id == id));
        if surviving.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }
        let indices: Vec<usize> = surviving
            .iter()
            .map(|&id| {
                self.core
                    .running
                    .iter()
                    .position(|r| r.spec.id == id)
                    .expect("alive")
            })
            .collect();

        // ---- Draft: k sequential chain steps (width-1 beam). ----
        let params = SpecParams::new(self.spec_len, 1);
        let mut draft_ms = 0.0;
        {
            let mut step_pass = ForwardPass::default();
            for &i in &indices {
                step_pass.push(SeqWork::decode(self.core.running[i].context_len()));
            }
            // First step eager (shape change), rest replay captured graphs.
            draft_ms += self
                .core
                .config
                .testbed
                .draft
                .forward_latency_ms(&step_pass, false);
            if self.spec_len > 1 {
                let per = self
                    .core
                    .config
                    .testbed
                    .draft
                    .forward_latency_ms(&step_pass, true);
                draft_ms += per * f64::from(self.spec_len - 1);
            }
        }
        let chains: Vec<CandidateTree> = indices
            .iter()
            .map(|&i| {
                let r = &self.core.running[i];
                CandidateTree::speculate(self.core.config.pair.draft(), &r.lm_context(), params)
            })
            .collect();
        self.core.breakdown.speculation_ms += draft_ms;

        // ---- Verify all chains in one batched pass. ----
        let mut pass = ForwardPass::default();
        for (k, &i) in indices.iter().enumerate() {
            pass.push(SeqWork::verify(
                chains[k].tree().num_speculated().max(1) as u32,
                self.core.running[i].context_len(),
            ));
        }
        let verify_ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, true);
        self.core.breakdown.verification_ms += verify_ms;

        for (k, &i) in indices.iter().enumerate() {
            let outcome = {
                let r = &self.core.running[i];
                verify_tree(
                    self.core.config.pair.target(),
                    &r.lm_context(),
                    chains[k].tree(),
                    u64::from(r.generated()),
                    self.core.config.verify_mode,
                )
            };
            let r = &mut self.core.running[i];
            let remaining = r.remaining() as usize;
            let mut advanced = 0usize;
            for &tok in outcome.accepted_tokens.iter().take(remaining) {
                r.push_token(tok);
                advanced += 1;
            }
            if advanced < remaining {
                r.push_token(outcome.bonus_token);
            }
            self.core.speculated_total += chains[k].tree().num_speculated() as u64;
            self.core.accepted_total += advanced as u64;
            let r = &mut self.core.running[i];
            r.accepted_tokens += advanced as u64;
            r.verify_steps += 1;
        }

        let ms = draft_ms + verify_ms;
        self.core.collect_finished(now_ms + ms);
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn workload(n: u64, category: Category) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category,
                arrival_ms: id as f64 * 10.0,
                prompt_len: 24,
                output_len: 16,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x22,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "spec test".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = VllmSpecEngine::new(SystemConfig::llama70b(1), 4);
        let result = run(
            &mut engine,
            &workload(5, Category::Chatbot),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(result.records.len(), 5);
    }

    #[test]
    fn acceptance_is_in_published_range() {
        let mut engine = VllmSpecEngine::new(SystemConfig::llama70b(1), 4);
        let result = run(
            &mut engine,
            &workload(8, Category::Chatbot),
            RunOptions::default(),
        )
        .unwrap();
        assert!(
            result.mean_accepted_per_verify > 1.0 && result.mean_accepted_per_verify < 4.0,
            "mean accepted = {}",
            result.mean_accepted_per_verify
        );
    }

    #[test]
    fn speculation_beats_plain_decoding_on_tpot() {
        let wl = workload(4, Category::CodingCopilot);
        let spec = run(
            &mut VllmSpecEngine::new(SystemConfig::llama70b(1), 4),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let plain = run(
            &mut crate::vllm::VllmEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let mean_tpot = |res: &serving::RunResult| {
            res.records.iter().map(|r| r.avg_tpot_ms()).sum::<f64>() / res.records.len() as f64
        };
        assert!(
            mean_tpot(&spec) < mean_tpot(&plain),
            "spec {:.1} ms !< plain {:.1} ms",
            mean_tpot(&spec),
            mean_tpot(&plain)
        );
    }

    #[test]
    fn longer_chains_accept_more_per_verification() {
        let wl = workload(4, Category::Chatbot);
        let k4 = run(
            &mut VllmSpecEngine::new(SystemConfig::llama70b(1), 4),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let k8 = run(
            &mut VllmSpecEngine::new(SystemConfig::llama70b(1), 8),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert!(k8.mean_accepted_per_verify >= k4.mean_accepted_per_verify);
    }
}
