//! Baseline serving systems the paper compares against.
//!
//! Each engine reimplements the *scheduling policy* of a published system on
//! the shared substrate (`serving::EngineCore` + the roofline cost model), so
//! comparisons against AdaServe isolate exactly the policy difference:
//!
//! | engine | system | policy |
//! |---|---|---|
//! | [`VllmEngine`] | vLLM \[22\] | continuous batching, prefill-prioritized, paged KV with recompute preemption |
//! | [`SarathiEngine`] | Sarathi-Serve \[1\] | chunked prefill co-batched with decode under a per-iteration token budget |
//! | [`VllmSpecEngine`] | vLLM-Spec(k) | vLLM + sequence speculative decoding with fixed draft length `k` |
//! | [`PriorityEngine`] | vLLM + Priority | urgent requests first; decode batch capped so its modelled latency fits the strictest admitted SLO |
//! | [`FastServeEngine`] | FastServe \[51\] | preemptive MLFQ (skip-join) at iteration granularity |
//! | [`VtcEngine`] | VTC \[44\] | fair queuing by per-service virtual token counters |
//! | [`SmartSpecEngine`] | SmartSpec \[30\] | goodput-optimized adaptive draft-chain length (related-work extension) |
//! | [`StaticTreeEngine`] | Sequoia-style \[9\] | fixed (depth, width) speculation trees (related-work extension) |
//!
//! All six appear in the paper's Fig. 1 motivation study and/or the §6
//! end-to-end comparison.

pub mod common;
pub mod fastserve;
pub mod priority;
pub mod sarathi;
pub mod smartspec;
pub mod statictree;
pub mod vllm;
pub mod vllm_spec;
pub mod vtc;

pub use fastserve::FastServeEngine;
pub use priority::PriorityEngine;
pub use sarathi::SarathiEngine;
pub use smartspec::SmartSpecEngine;
pub use statictree::StaticTreeEngine;
pub use vllm::VllmEngine;
pub use vllm_spec::VllmSpecEngine;
pub use vtc::VtcEngine;
