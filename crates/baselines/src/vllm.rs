//! vLLM-style continuous batching (the paper's primary baseline).
//!
//! Policy (vLLM v0 scheduler): admit FIFO under memory and batch caps,
//! prioritize prefill of newly admitted prompts (whole-prompt prefill
//! iterations), then decode all running requests one token per iteration.
//! Memory pressure triggers recompute-preemption of the most recently
//! admitted request. All requests share each iteration's latency uniformly —
//! the very property that makes multi-SLO attainment hard (paper Fig. 2).

use crate::common;
use serving::{EngineCore, ServingEngine, StepResult, SystemConfig};

/// The vLLM baseline engine.
#[derive(Debug)]
pub struct VllmEngine {
    core: EngineCore,
}

impl VllmEngine {
    /// Creates the engine.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            core: EngineCore::new(config),
        }
    }
}

impl ServingEngine for VllmEngine {
    fn name(&self) -> String {
        "vLLM".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();
        // Prefill-prioritized: new prompts run alone (vLLM v0 behaviour).
        if let Some(result) = common::full_prefill_pass(&mut self.core, now_ms) {
            return result;
        }
        let ids = common::decoding_ids(&self.core);
        let ms = common::decode_iteration(&mut self.core, &ids, now_ms);
        if ms <= 0.0 {
            // Nothing decodable (e.g. waiting on memory): idle tick.
            return StepResult { latency_ms: 1.0 };
        }
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn workload(n: u64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: id as f64 * 20.0,
                prompt_len: 24,
                output_len: 10,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x11,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "vllm test".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = VllmEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &workload(8), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 8);
        assert!(result.records.iter().all(|r| r.output_tokens == 10));
    }

    #[test]
    fn per_token_latency_is_roughly_uniform_across_requests() {
        let mut engine = VllmEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &workload(6), RunOptions::default()).unwrap();
        let tpots: Vec<f64> = result.records.iter().map(|r| r.avg_tpot_ms()).collect();
        let min = tpots.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tpots.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.5, "uniform batching: {min:.1}..{max:.1} ms");
    }

    #[test]
    fn no_speculation_means_zero_accepted() {
        let mut engine = VllmEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &workload(3), RunOptions::default()).unwrap();
        assert_eq!(result.mean_accepted_per_verify, 0.0);
    }

    #[test]
    fn memory_pressure_causes_preemptions_but_everyone_finishes() {
        let mut config = SystemConfig::llama70b(1);
        config.max_batch = 8;
        let mut engine = VllmEngine::new(config);
        // Shrink the pool: 6 blocks of 16 tokens = 96 tokens for 4 requests
        // needing 34 tokens each at completion.
        engine.core_mut().blocks = serving::BlockManager::new(6, 16);
        let result = run(&mut engine, &workload(4), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 4, "conservation under pressure");
        assert!(
            result.records.iter().any(|r| r.preemptions > 0),
            "pressure should trigger at least one preemption"
        );
    }
}
