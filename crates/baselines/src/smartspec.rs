//! SmartSpec-style goodput-optimized sequence speculation (related work
//! \[30\]; "adaptively tunes draft sequence lengths based on workload and
//! acceptance rates").
//!
//! Unlike vLLM-Spec's fixed chain length, this engine re-picks the length
//! `k` every iteration by maximizing modelled *goodput*: expected accepted
//! tokens per second given the observed per-position acceptance rate and
//! the roofline latency of drafting `k` steps plus verifying `k·n` tokens.
//! It adapts to load — but, like all the speculation baselines, it is
//! SLO-agnostic: every request gets the same `k`.

use crate::common;
use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};
use spectree::{verify_tree, CandidateTree, SpecParams};

/// The SmartSpec-style baseline engine.
#[derive(Debug)]
pub struct SmartSpecEngine {
    core: EngineCore,
    /// Longest chain considered.
    max_len: u32,
    /// EMA of the per-position acceptance rate α.
    alpha: f64,
}

impl SmartSpecEngine {
    /// Creates the engine (chains up to 8, α seeded at 0.7).
    pub fn new(config: SystemConfig) -> Self {
        Self {
            core: EngineCore::new(config),
            max_len: 8,
            alpha: 0.7,
        }
    }

    /// Current acceptance-rate estimate.
    pub fn acceptance_estimate(&self) -> f64 {
        self.alpha
    }

    /// Expected accepted tokens (plus bonus) of a length-`k` chain under α.
    fn expected_advance(&self, k: u32) -> f64 {
        // 1 (bonus) + α + α² + … + α^k.
        let mut total = 1.0;
        let mut p = 1.0;
        for _ in 0..k {
            p *= self.alpha;
            total += p;
        }
        total
    }

    /// Picks the chain length maximizing modelled goodput for `n` requests
    /// at a representative context length.
    fn pick_len(&self, n: usize, ctx_len: u32) -> u32 {
        let mut best = (0u32, 0.0f64);
        for k in 1..=self.max_len {
            let draft_pass = ForwardPass::new(vec![
                SeqWork {
                    new_tokens: 1,
                    ctx_len
                };
                n
            ]);
            let draft_ms = self
                .core
                .config
                .testbed
                .draft
                .forward_latency_ms(&draft_pass, true)
                * f64::from(k);
            let verify_pass = ForwardPass::new(vec![SeqWork::verify(k, ctx_len); n]);
            let verify_ms = self
                .core
                .config
                .testbed
                .target
                .forward_latency_ms(&verify_pass, true);
            let goodput = n as f64 * self.expected_advance(k) / (draft_ms + verify_ms);
            if goodput > best.1 {
                best = (k, goodput);
            }
        }
        best.0.max(1)
    }
}

impl ServingEngine for SmartSpecEngine {
    fn name(&self) -> String {
        "SmartSpec".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();
        if let Some(result) = common::full_prefill_pass(&mut self.core, now_ms) {
            return result;
        }
        let ids: Vec<u64> = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .map(|r| r.spec.id)
            .collect();
        if ids.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }
        let mean_ctx = (self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .map(|r| u64::from(r.context_len()))
            .sum::<u64>()
            / ids.len() as u64) as u32;
        let k = self.pick_len(ids.len(), mean_ctx.max(1));

        // KV headroom, then draft + verify (chain speculation of length k).
        let mut surviving = Vec::with_capacity(ids.len());
        for &id in &ids {
            let Some(idx) = self.core.running.iter().position(|r| r.spec.id == id) else {
                continue;
            };
            if self.core.grow_with_preemption(idx, u64::from(k) + 1) {
                surviving.push(id);
            } else {
                self.core.preempt(idx);
            }
        }
        surviving.retain(|&id| self.core.running.iter().any(|r| r.spec.id == id));
        if surviving.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }
        let indices: Vec<usize> = surviving
            .iter()
            .map(|&id| {
                self.core
                    .running
                    .iter()
                    .position(|r| r.spec.id == id)
                    .expect("alive")
            })
            .collect();

        let params = SpecParams::new(k, 1);
        let mut step_pass = ForwardPass::default();
        for &i in &indices {
            step_pass.push(SeqWork::decode(self.core.running[i].context_len()));
        }
        let mut draft_ms = self
            .core
            .config
            .testbed
            .draft
            .forward_latency_ms(&step_pass, false);
        if k > 1 {
            draft_ms += self
                .core
                .config
                .testbed
                .draft
                .forward_latency_ms(&step_pass, true)
                * f64::from(k - 1);
        }
        let chains: Vec<CandidateTree> = indices
            .iter()
            .map(|&i| {
                let r = &self.core.running[i];
                CandidateTree::speculate(self.core.config.pair.draft(), &r.lm_context(), params)
            })
            .collect();
        self.core.breakdown.speculation_ms += draft_ms;

        let mut pass = ForwardPass::default();
        for (c, &i) in indices.iter().enumerate() {
            pass.push(SeqWork::verify(
                chains[c].tree().num_speculated().max(1) as u32,
                self.core.running[i].context_len(),
            ));
        }
        let verify_ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, true);
        self.core.breakdown.verification_ms += verify_ms;

        let mut accepted_sum = 0u64;
        let mut positions = 0u64;
        for (c, &i) in indices.iter().enumerate() {
            let outcome = {
                let r = &self.core.running[i];
                verify_tree(
                    self.core.config.pair.target(),
                    &r.lm_context(),
                    chains[c].tree(),
                    u64::from(r.generated()),
                    self.core.config.verify_mode,
                )
            };
            let r = &mut self.core.running[i];
            let remaining = r.remaining() as usize;
            let mut advanced = 0usize;
            for &tok in outcome.accepted_tokens.iter().take(remaining) {
                r.push_token(tok);
                advanced += 1;
            }
            if advanced < remaining {
                r.push_token(outcome.bonus_token);
            }
            accepted_sum += advanced as u64;
            positions += u64::from(k);
            self.core.speculated_total += chains[c].tree().num_speculated() as u64;
            self.core.accepted_total += advanced as u64;
            let r = &mut self.core.running[i];
            r.accepted_tokens += advanced as u64;
            r.verify_steps += 1;
        }
        // Update the acceptance estimate (per-position rate).
        if positions > 0 {
            let observed = accepted_sum as f64 / positions as f64;
            self.alpha = (0.9 * self.alpha + 0.1 * observed).clamp(0.05, 0.98);
        }

        let ms = draft_ms + verify_ms;
        self.core.collect_finished(now_ms + ms);
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn workload(n: u64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: id as f64 * 10.0,
                prompt_len: 24,
                output_len: 16,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x5A,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "smartspec".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = SmartSpecEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &workload(6), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 6);
        assert!(result.mean_accepted_per_verify > 0.5);
    }

    #[test]
    fn acceptance_estimate_converges_into_plausible_range() {
        let mut engine = SmartSpecEngine::new(SystemConfig::llama70b(1));
        let _ = run(&mut engine, &workload(10), RunOptions::default()).unwrap();
        let alpha = engine.acceptance_estimate();
        assert!((0.3..=0.95).contains(&alpha), "alpha = {alpha}");
    }

    #[test]
    fn picks_longer_chains_at_light_load() {
        let engine = SmartSpecEngine::new(SystemConfig::llama70b(1));
        let k_light = engine.pick_len(1, 512);
        let k_heavy = engine.pick_len(200, 512);
        assert!(k_light >= k_heavy, "light {k_light} !>= heavy {k_heavy}");
    }
}
