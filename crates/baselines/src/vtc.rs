//! VTC: fair scheduling via virtual token counters.
//!
//! VTC \[44\] provides *fairness* across services: each service (here, each
//! request category) accumulates a counter of tokens served, and the
//! scheduler prioritizes the service with the smallest counter. Fairness is
//! orthogonal to SLO-awareness — an urgent category with heavy traffic gets
//! throttled toward its fair share regardless of its latency needs, which is
//! why VTC underperforms on the Fig. 1 multi-SLO workload.

use serving::{EngineCore, ServingEngine, StepResult, SystemConfig};
use workload::Category;

/// The VTC baseline engine.
#[derive(Debug)]
pub struct VtcEngine {
    core: EngineCore,
    /// Per-category virtual token counters (prefill + decode tokens served).
    counters: [f64; 3],
    /// Per-category weights (equal by default).
    weights: [f64; 3],
}

impl VtcEngine {
    /// Creates the engine with equal service weights.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            core: EngineCore::new(config),
            counters: [0.0; 3],
            weights: [1.0; 3],
        }
    }

    /// Current weighted counter for a category.
    pub fn counter(&self, c: Category) -> f64 {
        self.counters[c.index()] / self.weights[c.index()]
    }

    /// Charges served tokens to a category's counter.
    fn charge(&mut self, c: Category, tokens: f64) {
        self.counters[c.index()] += tokens;
    }
}

impl ServingEngine for VtcEngine {
    fn name(&self) -> String {
        "VTC".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        // Admission order: least-served category first (the fair-queueing
        // rule), FIFO within a category.
        let mut sorted: Vec<_> = self.core.waiting.drain(..).collect();
        let counters = self.counters;
        let weights = self.weights;
        sorted.sort_by(|a, b| {
            let ca = counters[a.spec.category.index()] / weights[a.spec.category.index()];
            let cb = counters[b.spec.category.index()] / weights[b.spec.category.index()];
            ca.total_cmp(&cb)
                .then(a.spec.arrival_ms.total_cmp(&b.spec.arrival_ms))
        });
        self.core.waiting.extend(sorted);
        self.core.admit_fifo();

        if let Some(result) = crate::common::full_prefill_pass(&mut self.core, now_ms) {
            // Charge prefilled tokens to their categories.
            let charges: Vec<(Category, f64)> = self
                .core
                .running
                .iter()
                .filter(|r| r.prefill_remaining() == 0 && r.generated() == 0)
                .map(|r| (r.spec.category, f64::from(r.prefilled())))
                .collect();
            for (c, t) in charges {
                self.charge(c, t);
            }
            return result;
        }

        let ids = crate::common::decoding_ids(&self.core);
        let charges: Vec<Category> = ids
            .iter()
            .filter_map(|&id| {
                self.core
                    .running
                    .iter()
                    .find(|r| r.spec.id == id)
                    .map(|r| r.spec.category)
            })
            .collect();
        let ms = crate::common::decode_iteration(&mut self.core, &ids, now_ms);
        if ms <= 0.0 {
            return StepResult { latency_ms: 1.0 };
        }
        for c in charges {
            self.charge(c, 1.0);
        }
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::RequestSpec;
    use workload::Workload;

    fn workload() -> Workload {
        let mut requests = Vec::new();
        for id in 0..6u64 {
            requests.push(RequestSpec {
                id,
                category: if id % 2 == 0 {
                    Category::CodingCopilot
                } else {
                    Category::Chatbot
                },
                arrival_ms: id as f64 * 8.0,
                prompt_len: 24,
                output_len: 10,
                tpot_slo_ms: if id % 2 == 0 { 30.0 } else { 50.0 },
                ttft_slo_ms: 1_000.0,
                stream_seed: id,
                prefix: None,
            });
        }
        Workload {
            requests,
            description: "vtc".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = VtcEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &workload(), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 6);
    }

    #[test]
    fn counters_accumulate_service() {
        let mut engine = VtcEngine::new(SystemConfig::llama70b(1));
        let _ = run(&mut engine, &workload(), RunOptions::default()).unwrap();
        assert!(engine.counter(Category::CodingCopilot) > 0.0);
        assert!(engine.counter(Category::Chatbot) > 0.0);
        // Both categories had equal load → roughly equal service.
        let a = engine.counter(Category::CodingCopilot);
        let b = engine.counter(Category::Chatbot);
        assert!((a / b - 1.0).abs() < 0.5, "unbalanced service: {a} vs {b}");
    }
}
