//! Sarathi-Serve: chunked prefill co-batched with decode.
//!
//! Sarathi-Serve \[1\] observes that prefill is compute-bound while decode
//! underutilizes compute, and fills each iteration with decode tokens plus
//! prompt *chunks* up to a fixed per-iteration token budget. This bounds the
//! latency impact of long prompts on running decodes (improving TTFT
//! fairness) but still serves every request at the same per-token rate.

use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};

/// The Sarathi-Serve baseline engine.
#[derive(Debug)]
pub struct SarathiEngine {
    core: EngineCore,
    /// Per-iteration token budget shared by decode tokens and prefill chunks.
    token_budget: u32,
}

impl SarathiEngine {
    /// Creates the engine with the canonical 512-token iteration budget.
    pub fn new(config: SystemConfig) -> Self {
        Self::with_budget(config, 512)
    }

    /// Creates the engine with an explicit iteration token budget.
    pub fn with_budget(config: SystemConfig, token_budget: u32) -> Self {
        assert!(token_budget >= 1);
        Self {
            core: EngineCore::new(config),
            token_budget,
        }
    }
}

impl ServingEngine for SarathiEngine {
    fn name(&self) -> String {
        "Sarathi-Serve".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();

        // Decode tokens claim the budget first (one per decoding request),
        // prefill chunks fill the remainder.
        let decode_ids: Vec<u64> = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .map(|r| r.spec.id)
            .collect();

        // Make KV room for each decode token.
        let mut surviving: Vec<u64> = Vec::with_capacity(decode_ids.len());
        for &id in &decode_ids {
            let Some(idx) = self.core.running.iter().position(|r| r.spec.id == id) else {
                continue;
            };
            if self.core.running[idx].phase != Phase::Decoding {
                continue;
            }
            if self.core.grow_with_preemption(idx, 1) {
                surviving.push(id);
            } else {
                self.core.preempt(idx);
            }
        }
        surviving.retain(|&id| self.core.running.iter().any(|r| r.spec.id == id));

        let decode_tokens = surviving.len() as u32;
        let prefill_budget = self.token_budget.saturating_sub(decode_tokens);
        let prefill_plan = self.core.plan_prefill(prefill_budget);

        if surviving.is_empty() && prefill_plan.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }

        let mut pass = ForwardPass::default();
        for &id in &surviving {
            let idx = self
                .core
                .running
                .iter()
                .position(|r| r.spec.id == id)
                .expect("alive");
            pass.push(SeqWork::decode(self.core.running[idx].context_len()));
        }
        for &(i, chunk) in &prefill_plan {
            pass.push(SeqWork::prefill(chunk, self.core.running[i].prefilled()));
        }
        // Mixed chunked batches preclude CUDA-graph capture; decode-only
        // iterations replay captured graphs like any other engine.
        let ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, prefill_plan.is_empty());

        for &id in &surviving {
            let idx = self
                .core
                .running
                .iter()
                .position(|r| r.spec.id == id)
                .expect("alive");
            let token = self.core.next_token(idx);
            let r = &mut self.core.running[idx];
            r.push_token(token);
            r.verify_steps += 1;
        }
        let had_prefill = !prefill_plan.is_empty();
        self.core.apply_prefill(&prefill_plan);
        if had_prefill {
            // Attribute co-batched iterations to prefill + decode evenly
            // enough for the breakdown figure: split by token share.
            let total = f64::from(decode_tokens)
                + prefill_plan.iter().map(|&(_, c)| f64::from(c)).sum::<f64>();
            let pre_share = prefill_plan.iter().map(|&(_, c)| f64::from(c)).sum::<f64>() / total;
            self.core.breakdown.prefill_ms += ms * pre_share;
            self.core.breakdown.verification_ms += ms * (1.0 - pre_share);
        } else {
            self.core.breakdown.verification_ms += ms;
        }
        self.core.stamp_decode_starts(now_ms + ms);
        self.core.collect_finished(now_ms + ms);
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn mixed_workload() -> Workload {
        // A long-prompt summarization request arrives amid short chats.
        let mut requests: Vec<RequestSpec> = (0..4u64)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: id as f64 * 15.0,
                prompt_len: 24,
                output_len: 12,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id,
                prefix: None,
            })
            .collect();
        requests.push(RequestSpec {
            id: 4,
            category: Category::Summarization,
            arrival_ms: 30.0,
            prompt_len: 3000,
            output_len: 12,
            tpot_slo_ms: 150.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: 99,
            prefix: None,
        });
        requests.sort_by(|a, b| a.arrival_ms.partial_cmp(&b.arrival_ms).unwrap());
        Workload {
            requests,
            description: "mixed".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = SarathiEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &mixed_workload(), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 5);
    }

    #[test]
    fn long_prompts_do_not_stall_decodes_as_much_as_vllm() {
        // With a 3000-token prompt arriving mid-stream, Sarathi's chunking
        // caps each iteration, so chat decode latency is less disturbed than
        // under vLLM's whole-prompt prefill.
        let wl = mixed_workload();
        let sarathi = run(
            &mut SarathiEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let vllm = run(
            &mut crate::vllm::VllmEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let worst = |records: &[metrics::RequestRecord]| -> f64 {
            records
                .iter()
                .filter(|r| r.category == Category::Chatbot)
                .map(|r| r.avg_tpot_ms())
                .fold(0.0, f64::max)
        };
        assert!(
            worst(&sarathi.records) <= worst(&vllm.records) * 1.05,
            "sarathi {:.1} ms vs vllm {:.1} ms",
            worst(&sarathi.records),
            worst(&vllm.records)
        );
    }

    #[test]
    fn chunking_respects_budget() {
        let mut engine = SarathiEngine::with_budget(SystemConfig::llama70b(1), 128);
        let result = run(&mut engine, &mixed_workload(), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 5);
        // The 3000-token prompt needs ≥ 24 chunked iterations.
        assert!(
            result.iterations >= 24,
            "iterations = {}",
            result.iterations
        );
    }
}
