//! Iteration helpers shared by the baseline engines.

use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, Phase, StepResult};

/// Runs one whole-prompt prefill pass over every request in the prefill
/// phase (vLLM's prefill-prioritized iteration). Returns `None` if nothing
/// needs prefill.
pub fn full_prefill_pass(core: &mut EngineCore, now_ms: f64) -> Option<StepResult> {
    let plan = core.plan_prefill(u32::MAX);
    if plan.is_empty() {
        return None;
    }
    let mut pass = ForwardPass::default();
    for &(i, chunk) in &plan {
        pass.push(SeqWork::prefill(chunk, core.running[i].prefilled()));
    }
    let ms = core.config.testbed.target.forward_latency_ms(&pass, false);
    core.apply_prefill(&plan);
    core.breakdown.prefill_ms += ms;
    core.stamp_decode_starts(now_ms + ms);
    Some(StepResult { latency_ms: ms })
}

/// Runs one plain continuous-batching decode iteration over the requests
/// with the given ids (1 token each). Requests that get preempted while
/// making KV room are skipped. Returns the iteration latency (0.0 if no
/// request survived).
pub fn decode_iteration(core: &mut EngineCore, ids: &[u64], now_ms: f64) -> f64 {
    // Grow KV per request; growth may preempt others in `ids`.
    let mut surviving: Vec<u64> = Vec::with_capacity(ids.len());
    for &id in ids {
        let Some(idx) = core.running.iter().position(|r| r.spec.id == id) else {
            continue; // Preempted by an earlier growth in this loop.
        };
        if core.running[idx].phase != Phase::Decoding {
            continue;
        }
        if core.grow_with_preemption(idx, 1) {
            surviving.push(id);
        } else {
            core.preempt(idx);
        }
    }
    surviving.retain(|&id| core.running.iter().any(|r| r.spec.id == id));
    if surviving.is_empty() {
        return 0.0;
    }
    let mut pass = ForwardPass::default();
    for &id in &surviving {
        let idx = core
            .running
            .iter()
            .position(|r| r.spec.id == id)
            .expect("survives");
        pass.push(SeqWork::decode(core.running[idx].context_len()));
    }
    let ms = core.config.testbed.target.forward_latency_ms(&pass, true);
    for &id in &surviving {
        let idx = core
            .running
            .iter()
            .position(|r| r.spec.id == id)
            .expect("survives");
        let token = core.next_token(idx);
        let r = &mut core.running[idx];
        r.push_token(token);
        r.verify_steps += 1;
    }
    core.breakdown.verification_ms += ms;
    core.collect_finished(now_ms + ms);
    ms
}

/// Ids of all running requests currently decoding, in batch order.
pub fn decoding_ids(core: &EngineCore) -> Vec<u64> {
    core.running
        .iter()
        .filter(|r| r.phase == Phase::Decoding)
        .map(|r| r.spec.id)
        .collect()
}

/// Test-only front-door drive of one engine, shared by every baseline's
/// unit tests (replaces the deprecated `serving::run` with the same
/// signature, so tests read unchanged).
#[cfg(test)]
pub(crate) fn test_run(
    engine: &mut dyn serving::ServingEngine,
    workload: &workload::Workload,
    options: serving::RunOptions,
) -> Result<serving::RunResult, serving::RunError> {
    serving::ServeSession::with_options(serving::Colocated::borrowed(engine), options)
        .serve(workload)
        .map(serving::RunReport::into_colocated_result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::SystemConfig;
    use workload::{Category, RequestSpec};

    fn core_with(n: u64) -> EngineCore {
        let mut core = EngineCore::new(SystemConfig::llama70b(2));
        for id in 0..n {
            core.on_arrival(RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: 0.0,
                prompt_len: 16,
                output_len: 4,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id,
                prefix: None,
            });
        }
        core.admit_fifo();
        core
    }

    #[test]
    fn prefill_then_decode_completes_requests() {
        let mut core = core_with(2);
        let pre = full_prefill_pass(&mut core, 0.0).expect("prefill runs");
        assert!(pre.latency_ms > 0.0);
        assert!(full_prefill_pass(&mut core, 1.0).is_none(), "prefill done");
        let mut now = pre.latency_ms;
        for _ in 0..4 {
            let ids = decoding_ids(&core);
            assert_eq!(ids.len(), 2);
            let ms = decode_iteration(&mut core, &ids, now);
            assert!(ms > 0.0);
            now += ms;
        }
        assert_eq!(core.finished_count(), 2);
    }

    #[test]
    fn decode_iteration_with_no_ids_is_free() {
        let mut core = core_with(1);
        assert_eq!(decode_iteration(&mut core, &[], 0.0), 0.0);
    }
}
