//! vLLM + Priority: urgent-first scheduling with latency-capped batches.
//!
//! The Fig. 1 study includes vLLM augmented with priorities: urgent requests
//! preempt non-urgent ones during decoding. To actually *meet* a tight SLO,
//! the decode batch must stay small enough that its iteration latency fits
//! the strictest admitted request's TPOT bound — which is exactly why this
//! approach collapses under load: constraining the batch starves the other
//! categories and eventually congests everyone (paper §1).

use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};

/// The vLLM + Priority baseline engine.
#[derive(Debug)]
pub struct PriorityEngine {
    core: EngineCore,
}

impl PriorityEngine {
    /// Creates the engine.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            core: EngineCore::new(config),
        }
    }

    /// Estimated latency (ms) of decoding one token for `batch` requests.
    fn decode_latency_estimate(&self, indices: &[usize]) -> f64 {
        let mut pass = ForwardPass::default();
        for &i in indices {
            pass.push(SeqWork::decode(self.core.running[i].context_len()));
        }
        self.core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, true)
    }
}

impl ServingEngine for PriorityEngine {
    fn name(&self) -> String {
        "vLLM+Priority".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        // Urgent requests jump the admission queue.
        let waiting: &mut std::collections::VecDeque<_> = &mut self.core.waiting;
        let mut sorted: Vec<_> = waiting.drain(..).collect();
        sorted.sort_by(|a, b| {
            a.spec
                .tpot_slo_ms
                .total_cmp(&b.spec.tpot_slo_ms)
                .then(a.spec.arrival_ms.total_cmp(&b.spec.arrival_ms))
        });
        waiting.extend(sorted);
        self.core.admit_fifo();

        if let Some(result) = crate::common::full_prefill_pass(&mut self.core, now_ms) {
            return result;
        }

        // Build the decode batch in urgency order, capping the batch so its
        // estimated iteration latency fits the strictest member's SLO.
        let mut order: Vec<usize> = self
            .core
            .running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.phase == Phase::Decoding)
            .map(|(i, _)| i)
            .collect();
        order.sort_by(|&a, &b| {
            self.core.running[a]
                .spec
                .tpot_slo_ms
                .total_cmp(&self.core.running[b].spec.tpot_slo_ms)
                .then(
                    self.core.running[a]
                        .spec
                        .arrival_ms
                        .total_cmp(&self.core.running[b].spec.arrival_ms),
                )
        });
        let mut batch: Vec<usize> = Vec::new();
        let mut strictest = f64::INFINITY;
        for &i in &order {
            let mut attempt = batch.clone();
            attempt.push(i);
            let slo = self.core.running[i].spec.tpot_slo_ms.min(strictest);
            if self.decode_latency_estimate(&attempt) <= slo || batch.is_empty() {
                strictest = slo;
                batch = attempt;
            }
        }
        if batch.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }
        let ids: Vec<u64> = batch
            .iter()
            .map(|&i| self.core.running[i].spec.id)
            .collect();
        let ms = crate::common::decode_iteration(&mut self.core, &ids, now_ms);
        if ms <= 0.0 {
            return StepResult { latency_ms: 1.0 };
        }
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn two_tier_workload(n_each: u64, tight_slo: f64) -> Workload {
        let mut requests = Vec::new();
        for id in 0..n_each {
            requests.push(RequestSpec {
                id,
                category: Category::CodingCopilot,
                arrival_ms: id as f64 * 12.0,
                prompt_len: 24,
                output_len: 10,
                tpot_slo_ms: tight_slo,
                ttft_slo_ms: 1_000.0,
                stream_seed: id,
                prefix: None,
            });
            requests.push(RequestSpec {
                id: 1000 + id,
                category: Category::Summarization,
                arrival_ms: id as f64 * 12.0 + 3.0,
                prompt_len: 64,
                output_len: 10,
                tpot_slo_ms: 150.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: 1000 + id,
                prefix: None,
            });
        }
        requests.sort_by(|a, b| a.arrival_ms.partial_cmp(&b.arrival_ms).unwrap());
        Workload {
            requests,
            description: "two-tier".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = PriorityEngine::new(SystemConfig::llama70b(1));
        let result = run(
            &mut engine,
            &two_tier_workload(4, 30.0),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(result.records.len(), 8);
    }

    #[test]
    fn urgent_requests_jump_the_admission_queue() {
        // With a small batch cap a queue forms; urgent requests are admitted
        // first, so their time-to-first-token is much lower under backlog.
        let mut config = SystemConfig::llama70b(1);
        config.max_batch = 4;
        let mut engine = PriorityEngine::new(config);
        let mut wl = two_tier_workload(10, 30.0);
        // Burst: everyone arrives (nearly) together.
        for r in &mut wl.requests {
            r.arrival_ms = (r.id % 7) as f64 * 0.1;
        }
        wl.requests
            .sort_by(|a, b| a.arrival_ms.partial_cmp(&b.arrival_ms).unwrap());
        let result = run(&mut engine, &wl, RunOptions::default()).unwrap();
        let mean_ttft = |cat: Category| {
            let rs: Vec<f64> = result
                .records
                .iter()
                .filter(|r| r.category == cat)
                .map(|r| r.ttft_ms())
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        assert!(
            mean_ttft(Category::CodingCopilot) < 0.7 * mean_ttft(Category::Summarization),
            "urgent TTFT {:.0} !< relaxed TTFT {:.0}",
            mean_ttft(Category::CodingCopilot),
            mean_ttft(Category::Summarization)
        );
    }
}
