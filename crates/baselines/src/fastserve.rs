//! FastServe: preemptive MLFQ scheduling (skip-join multi-level feedback).
//!
//! FastServe \[51\] schedules at iteration granularity with a multi-level
//! feedback queue: requests start in a high-priority level and are demoted
//! as they consume service (generated tokens), so short outputs finish fast
//! and long ones yield. It has no notion of per-request SLOs — the paper's
//! Fig. 1 shows it violating tight-SLO categories under mixed load.

use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};

/// Generated-token thresholds demoting a request to the next queue level.
const LEVEL_THRESHOLDS: [u32; 3] = [16, 64, 192];

/// The FastServe baseline engine.
#[derive(Debug)]
pub struct FastServeEngine {
    core: EngineCore,
}

impl FastServeEngine {
    /// Creates the engine.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            core: EngineCore::new(config),
        }
    }

    /// MLFQ level of a request based on consumed service.
    fn level(generated: u32) -> usize {
        for (lvl, &t) in LEVEL_THRESHOLDS.iter().enumerate() {
            if generated < t {
                return lvl;
            }
        }
        LEVEL_THRESHOLDS.len()
    }
}

impl ServingEngine for FastServeEngine {
    fn name(&self) -> String {
        "FastServe".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();
        if let Some(result) = crate::common::full_prefill_pass(&mut self.core, now_ms) {
            return result;
        }
        // Serve only the highest-priority (lowest-level) nonempty queue —
        // iteration-granularity preemption of lower levels.
        let mut best_level = usize::MAX;
        for r in &self.core.running {
            if r.phase == Phase::Decoding {
                best_level = best_level.min(Self::level(r.generated()));
            }
        }
        if best_level == usize::MAX {
            return StepResult { latency_ms: 1.0 };
        }
        let ids: Vec<u64> = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding && Self::level(r.generated()) == best_level)
            .map(|r| r.spec.id)
            .collect();
        let ms = crate::common::decode_iteration(&mut self.core, &ids, now_ms);
        if ms <= 0.0 {
            return StepResult { latency_ms: 1.0 };
        }
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn mixed_lengths() -> Workload {
        let mut requests = Vec::new();
        // One long-output request arrives first, short ones after.
        requests.push(RequestSpec {
            id: 0,
            category: Category::Summarization,
            arrival_ms: 0.0,
            prompt_len: 32,
            output_len: 120,
            tpot_slo_ms: 150.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: 0,
            prefix: None,
        });
        for id in 1..5u64 {
            requests.push(RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: 5.0 * id as f64,
                prompt_len: 16,
                output_len: 10,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id,
                prefix: None,
            });
        }
        Workload {
            requests,
            description: "mixed lengths".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = FastServeEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &mixed_lengths(), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 5);
    }

    #[test]
    fn short_outputs_finish_before_long_ones() {
        let mut engine = FastServeEngine::new(SystemConfig::llama70b(1));
        let result = run(&mut engine, &mixed_lengths(), RunOptions::default()).unwrap();
        let long_done = result
            .records
            .iter()
            .find(|r| r.id == 0)
            .unwrap()
            .completion_ms;
        for r in result.records.iter().filter(|r| r.id != 0) {
            assert!(
                r.completion_ms < long_done,
                "short request {} finished after the long one",
                r.id
            );
        }
    }

    #[test]
    fn levels_demote_by_service() {
        assert_eq!(FastServeEngine::level(0), 0);
        assert_eq!(FastServeEngine::level(16), 1);
        assert_eq!(FastServeEngine::level(100), 2);
        assert_eq!(FastServeEngine::level(500), 3);
    }
}
