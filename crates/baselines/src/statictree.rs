//! Sequoia-style static *tree* speculation (related work \[9\]).
//!
//! Sequoia picks one hardware-aware tree topology offline and uses it for
//! every request and every iteration. This engine reproduces that policy on
//! the shared substrate: each decoding request speculates a fixed
//! `(depth, width)` beam tree and the whole candidate tree is verified —
//! no per-request selection, no SLO awareness, no load adaptation. It sits
//! between vLLM-Spec (chains) and AdaServe (SLO-customized trees) in the
//! design space and is used by the ablation harness.

use crate::common;
use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};
use spectree::{verify_tree, CandidateTree, SpecParams};

/// The static-tree speculation baseline engine.
#[derive(Debug)]
pub struct StaticTreeEngine {
    core: EngineCore,
    params: SpecParams,
}

impl StaticTreeEngine {
    /// Creates the engine with a fixed `(depth, width)` topology.
    pub fn new(config: SystemConfig, depth: u32, width: u32) -> Self {
        Self {
            core: EngineCore::new(config),
            params: SpecParams::new(depth, width),
        }
    }
}

impl ServingEngine for StaticTreeEngine {
    fn name(&self) -> String {
        format!("StaticTree({},{})", self.params.depth, self.params.width)
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();
        if let Some(result) = common::full_prefill_pass(&mut self.core, now_ms) {
            return result;
        }
        let ids: Vec<u64> = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .map(|r| r.spec.id)
            .collect();
        if ids.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }
        let mut surviving = Vec::with_capacity(ids.len());
        for &id in &ids {
            let Some(idx) = self.core.running.iter().position(|r| r.spec.id == id) else {
                continue;
            };
            if self
                .core
                .grow_with_preemption(idx, u64::from(self.params.depth) + 1)
            {
                surviving.push(id);
            } else {
                self.core.preempt(idx);
            }
        }
        surviving.retain(|&id| self.core.running.iter().any(|r| r.spec.id == id));
        if surviving.is_empty() {
            return StepResult { latency_ms: 1.0 };
        }
        let indices: Vec<usize> = surviving
            .iter()
            .map(|&id| {
                self.core
                    .running
                    .iter()
                    .position(|r| r.spec.id == id)
                    .expect("alive")
            })
            .collect();

        // Draft the full static tree for every request.
        let mut first = ForwardPass::default();
        for &i in &indices {
            first.push(SeqWork::decode(self.core.running[i].context_len()));
        }
        let mut draft_ms = self
            .core
            .config
            .testbed
            .draft
            .forward_latency_ms(&first, false);
        if self.params.depth > 1 {
            let mut rest = ForwardPass::default();
            for &i in &indices {
                rest.push(SeqWork {
                    new_tokens: self.params.width,
                    ctx_len: self.core.running[i].context_len(),
                });
            }
            draft_ms += self
                .core
                .config
                .testbed
                .draft
                .forward_latency_ms(&rest, true)
                * f64::from(self.params.depth - 1);
        }
        let trees: Vec<CandidateTree> = indices
            .iter()
            .map(|&i| {
                let r = &self.core.running[i];
                CandidateTree::speculate(
                    self.core.config.pair.draft(),
                    &r.lm_context(),
                    self.params,
                )
            })
            .collect();
        self.core.breakdown.speculation_ms += draft_ms;

        let mut pass = ForwardPass::default();
        for (c, &i) in indices.iter().enumerate() {
            pass.push(SeqWork::verify(
                trees[c].tree().num_speculated().max(1) as u32,
                self.core.running[i].context_len(),
            ));
        }
        let verify_ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, true);
        self.core.breakdown.verification_ms += verify_ms;

        for (c, &i) in indices.iter().enumerate() {
            let outcome = {
                let r = &self.core.running[i];
                verify_tree(
                    self.core.config.pair.target(),
                    &r.lm_context(),
                    trees[c].tree(),
                    u64::from(r.generated()),
                    self.core.config.verify_mode,
                )
            };
            let r = &mut self.core.running[i];
            let remaining = r.remaining() as usize;
            let mut advanced = 0usize;
            for &tok in outcome.accepted_tokens.iter().take(remaining) {
                r.push_token(tok);
                advanced += 1;
            }
            if advanced < remaining {
                r.push_token(outcome.bonus_token);
            }
            self.core.speculated_total += trees[c].tree().num_speculated() as u64;
            self.core.accepted_total += advanced as u64;
            let r = &mut self.core.running[i];
            r.accepted_tokens += advanced as u64;
            r.verify_steps += 1;
        }
        let ms = draft_ms + verify_ms;
        self.core.collect_finished(now_ms + ms);
        StepResult { latency_ms: ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_run as run;
    use serving::RunOptions;
    use workload::{Category, RequestSpec, Workload};

    fn workload(n: u64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category: Category::CodingCopilot,
                arrival_ms: id as f64 * 10.0,
                prompt_len: 24,
                output_len: 16,
                tpot_slo_ms: 30.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x91,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "static tree".into(),
        }
    }

    #[test]
    fn completes_all_requests() {
        let mut engine = StaticTreeEngine::new(SystemConfig::llama70b(1), 4, 2);
        let result = run(&mut engine, &workload(5), RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 5);
    }

    #[test]
    fn trees_accept_more_than_chains_of_equal_depth() {
        // Width > 1 covers sibling continuations, so acceptance per
        // verification should not be below the width-1 chain's.
        let wl = workload(6);
        let tree = run(
            &mut StaticTreeEngine::new(SystemConfig::llama70b(1), 4, 3),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let chain = run(
            &mut crate::vllm_spec::VllmSpecEngine::new(SystemConfig::llama70b(1), 4),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert!(
            tree.mean_accepted_per_verify >= chain.mean_accepted_per_verify - 0.05,
            "tree {:.2} vs chain {:.2}",
            tree.mean_accepted_per_verify,
            chain.mean_accepted_per_verify
        );
    }
}
