//! Property tests for the disaggregated driver's core invariants.
//!
//! * **KV-transfer conservation** — every request that enters the prefill
//!   pool is prefilled exactly once, migrated exactly once, and decodes to
//!   completion exactly once on the decode pool: no request and no output
//!   token is lost or duplicated across the migration boundary, regardless
//!   of pool split, link bandwidth or drain/join events.
//! * **Determinism** — a disaggregated run is a pure function of
//!   (workload, pools, dispatcher, link, events); with the workload seed
//!   resolved through `ADASERVE_SEED` (the repo-wide convention), two runs
//!   reproduce bit-identically.

use cluster::RouterKind;
use disagg::{
    DisaggCluster, DisaggScalingEvent, Dispatcher, KvLink, Pool, PrefillPool, ScalingAction,
};
use proptest::prelude::*;
use serving::{ExecMode, ReplicaAddr, ServeSession, ServingEngine, SystemConfig, UnitStats};
use workload::{Category, RequestSpec, Workload};

/// Small synthetic workload derived from a seed (each case is a full
/// two-pool simulation, so cases stay tiny).
fn workload(seed: u64, n_requests: u64) -> Workload {
    let requests = (0..n_requests)
        .map(|id| {
            let h = simllm::hash::seed_stream(seed, id);
            let category = Category::ALL[(h % 3) as usize];
            RequestSpec {
                id,
                category,
                arrival_ms: id as f64 * (4.0 + (h % 30) as f64),
                prompt_len: 8 + (h % 120) as u32,
                output_len: 4 + (h % 10) as u32,
                tpot_slo_ms: match category {
                    Category::CodingCopilot => 28.0,
                    Category::Chatbot => 50.0,
                    Category::Summarization => 150.0,
                },
                ttft_slo_ms: category.ttft_slo().resolve(25.0),
                stream_seed: h,
                prefix: None,
            }
        })
        .collect();
    Workload {
        requests,
        description: format!("disagg proptest seed {seed}"),
    }
}

/// The front-door run outcome plus the migration telemetry the legacy
/// `DisaggRunResult` carried inline.
struct DisaggOutcome {
    records: Vec<metrics::RequestRecord>,
    per_prefill: Vec<UnitStats>,
    per_decode: Vec<UnitStats>,
    transfers: disagg::TransferStats,
    end_ms: f64,
    iterations: u64,
}

fn run_disagg(
    seed: u64,
    n_requests: u64,
    n_prefill: usize,
    n_decode: usize,
    bandwidth_gbps: f64,
    events: Vec<DisaggScalingEvent>,
) -> DisaggOutcome {
    run_disagg_stepping(
        seed,
        n_requests,
        n_prefill,
        n_decode,
        bandwidth_gbps,
        events,
        ExecMode::default(),
    )
}

fn run_disagg_stepping(
    seed: u64,
    n_requests: u64,
    n_prefill: usize,
    n_decode: usize,
    bandwidth_gbps: f64,
    events: Vec<DisaggScalingEvent>,
    mode: ExecMode,
) -> DisaggOutcome {
    let prefill = PrefillPool::new(vec![SystemConfig::llama70b(seed); n_prefill]);
    let decode: Vec<Box<dyn ServingEngine>> = (0..n_decode)
        .map(|_| {
            Box::new(adaserve_core::AdaServeEngine::new(SystemConfig::llama70b(
                seed,
            ))) as Box<dyn ServingEngine>
        })
        .collect();
    let cluster = DisaggCluster::new(
        prefill,
        decode,
        Dispatcher::new(RouterKind::SloAware.build()),
        KvLink::new(bandwidth_gbps, 0.05),
    )
    .with_exec_mode(mode);
    let mut session = ServeSession::new(cluster);
    for e in events {
        session.scale_at(
            e.at_ms,
            ReplicaAddr {
                pool: e.pool,
                index: e.replica,
            },
            e.action,
        );
    }
    let report = session
        .serve(&workload(seed, n_requests))
        .expect("disagg run completes");
    let transfers = session.into_inner().transfer_stats();
    let (per_prefill, per_decode) = report
        .units
        .iter()
        .cloned()
        .partition(|u| u.replica.pool == Pool::Prefill);
    DisaggOutcome {
        records: report.records,
        per_prefill,
        per_decode,
        transfers,
        end_ms: report.end_ms,
        iterations: report.iterations,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn kv_transfer_conserves_every_request_and_token(
        seed in 0u64..1_000,
        n_requests in 1u64..20,
        n_prefill in 1usize..3,
        n_decode in 1usize..4,
        bandwidth in 8.0f64..400.0,
    ) {
        let result = run_disagg(seed, n_requests, n_prefill, n_decode, bandwidth, Vec::new());
        let wl = workload(seed, n_requests);

        // Every request decodes exactly once.
        prop_assert_eq!(result.records.len() as u64, n_requests);
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..n_requests).collect();
        prop_assert_eq!(ids, expected, "each id exactly once");

        // Every request migrated exactly once; prefill-side accounting
        // partitions the workload.
        prop_assert_eq!(result.transfers.transfers, n_requests);
        let routed: u64 = result.per_prefill.iter().map(|p| p.routed).sum();
        prop_assert_eq!(routed, n_requests);
        let prefilled: u64 = result.per_prefill.iter().map(|p| p.prefilled_requests).sum();
        prop_assert_eq!(prefilled, n_requests);

        // No tokens lost across the migration boundary: prefilled prompt
        // tokens and generated output tokens both match the workload sums.
        let prompt_tokens: u64 = wl.requests.iter().map(|r| u64::from(r.prompt_len)).sum();
        let prefill_tokens: u64 = result.per_prefill.iter().map(|p| p.prefill_tokens).sum();
        prop_assert_eq!(prefill_tokens, prompt_tokens, "prompts prefilled exactly once");
        for rec in &result.records {
            let spec = &wl.requests[rec.id as usize];
            prop_assert_eq!(rec.output_tokens, spec.output_len,
                "request {} emitted all of its output", rec.id);
        }
        // Transferred bytes cover each context exactly once.
        let kv = 327_680u64; // Llama-70B target KV bytes per token
        let expect_bytes: u64 = wl.requests.iter().map(|r| u64::from(r.prompt_len) * kv).sum();
        prop_assert_eq!(result.transfers.bytes, expect_bytes);
    }

    #[test]
    fn drain_join_on_either_pool_loses_nothing(
        seed in 0u64..1_000,
        n_requests in 2u64..16,
        drain_at in 1.0f64..300.0,
        drain_decode in any::<bool>(),
    ) {
        let pool = if drain_decode { Pool::Decode } else { Pool::Prefill };
        let events = vec![
            DisaggScalingEvent { at_ms: drain_at, pool, replica: 0, action: ScalingAction::Drain },
            DisaggScalingEvent {
                at_ms: drain_at * 2.0, pool, replica: 0, action: ScalingAction::Join,
            },
        ];
        let result = run_disagg(seed, n_requests, 2, 2, 64.0, events);
        prop_assert_eq!(result.records.len() as u64, n_requests);
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, n_requests);
    }

    #[test]
    fn runs_are_deterministic_under_a_fixed_seed(
        base_seed in 0u64..1_000,
        n_requests in 1u64..14,
        n_prefill in 1usize..3,
        n_decode in 1usize..3,
    ) {
        // Resolve through the ADASERVE_SEED convention: when CI pins the
        // env var, every case collapses onto that seed and must still
        // reproduce bit-identically.
        let seed = workload::env_seed(base_seed);
        let a = run_disagg(seed, n_requests, n_prefill, n_decode, 96.0, Vec::new());
        let b = run_disagg(seed, n_requests, n_prefill, n_decode, 96.0, Vec::new());
        prop_assert_eq!(a.records, b.records, "merged records reproduce");
        prop_assert_eq!(a.end_ms, b.end_ms);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.transfers, b.transfers);
        let pre_a: Vec<u64> = a.per_prefill.iter().map(|p| p.routed).collect();
        let pre_b: Vec<u64> = b.per_prefill.iter().map(|p| p.routed).collect();
        prop_assert_eq!(pre_a, pre_b, "prefill dispatch reproduces");
        let dec_a: Vec<u64> = a.per_decode.iter().map(|u| u.routed).collect();
        let dec_b: Vec<u64> = b.per_decode.iter().map(|u| u.routed).collect();
        prop_assert_eq!(dec_a, dec_b, "decode handoff reproduces");
    }

    /// Sharded decode stepping (any worker count, including more workers
    /// than decode replicas) is output-identical to sequential stepping,
    /// with and without a mid-run drain/join on the decode pool.
    #[test]
    fn sharded_decode_stepping_matches_sequential(
        base_seed in 0u64..1_000,
        n_requests in 1u64..16,
        n_prefill in 1usize..3,
        shape_index in 0usize..3,
        workers_index in 0usize..4,
        bandwidth in 16.0f64..300.0,
        with_scaling in any::<bool>(),
        drain_at in 1.0f64..300.0,
    ) {
        let seed = workload::env_seed(base_seed);
        let n_decode = [1usize, 2, 3][shape_index];
        // Some(16) exceeds every decode-pool shape: empty shards steal.
        let workers = [None, Some(1), Some(2), Some(16)][workers_index];
        let events = if with_scaling {
            vec![
                DisaggScalingEvent {
                    at_ms: drain_at,
                    pool: Pool::Decode,
                    replica: n_decode - 1,
                    action: ScalingAction::Drain,
                },
                DisaggScalingEvent {
                    at_ms: drain_at * 2.0,
                    pool: Pool::Decode,
                    replica: n_decode - 1,
                    action: ScalingAction::Join,
                },
            ]
        } else {
            Vec::new()
        };
        let par = run_disagg_stepping(
            seed, n_requests, n_prefill, n_decode, bandwidth, events.clone(),
            ExecMode::Sharded { workers },
        );
        let seq = run_disagg_stepping(
            seed, n_requests, n_prefill, n_decode, bandwidth, events, ExecMode::Sequential,
        );
        prop_assert_eq!(par.records, seq.records, "records byte-identical");
        prop_assert_eq!(par.end_ms, seq.end_ms);
        prop_assert_eq!(par.iterations, seq.iterations);
        prop_assert_eq!(par.transfers, seq.transfers, "same migration telemetry");
        let dec_p: Vec<u64> = par.per_decode.iter().map(|u| u.routed).collect();
        let dec_s: Vec<u64> = seq.per_decode.iter().map(|u| u.routed).collect();
        prop_assert_eq!(dec_p, dec_s, "same decode handoff under sharded stepping");
    }
}
