//! The KV-migration cost model.
//!
//! When a prompt finishes prefill, its KV cache — per-token KV bytes
//! across every layer of the target model ([`roofline`]'s
//! `ModelSpec::kv_bytes_per_token`) times the context length — must cross
//! the interconnect to the decode replica before the first decode step.
//! The [`KvLink`] prices one transfer from a link bandwidth (NVLink by
//! default, PCIe-class for what-if sweeps) plus a fixed setup cost; the
//! [`TransferQueue`] keeps every in-flight transfer, serializing transfers
//! that target the same decode replica's ingress link while transfers to
//! different replicas proceed in parallel.
//!
//! Transfers *overlap decode*: a decode replica keeps iterating on its
//! running batch while KV streams in; only the migrated request itself
//! waits for its `arrive_ms`. The draft model's state is not transferred —
//! the colocated draft re-derives its context from the token ids that
//! travel with the request (bytes negligible next to the target KV).

use serving::LiveRequest;

/// An interconnect link for KV migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvLink {
    /// Link bandwidth in GB/s (per direction).
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer setup cost in milliseconds (handshake, layout).
    pub base_ms: f64,
}

impl KvLink {
    /// A link with explicit bandwidth and setup cost.
    ///
    /// # Panics
    ///
    /// Panics unless bandwidth is positive and the setup cost non-negative.
    pub fn new(bandwidth_gbps: f64, base_ms: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(base_ms >= 0.0, "setup cost cannot be negative");
        Self {
            bandwidth_gbps,
            base_ms,
        }
    }

    /// A link at the GPU's published NVLink bandwidth (the intra-node
    /// disaggregation case) with a small fixed setup cost.
    pub fn nvlink(gpu: &roofline::GpuSpec) -> Self {
        Self::new(gpu.nvlink_gbps, 0.05)
    }

    /// Time to move `bytes` over the link, in milliseconds.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.base_ms + bytes as f64 / (self.bandwidth_gbps * 1e9) * 1e3
    }
}

/// One in-flight KV migration.
#[derive(Debug)]
pub struct KvTransfer {
    /// The migrating request (prefill complete, nothing generated).
    pub request: LiveRequest,
    /// Source prefill replica.
    pub from_prefill: usize,
    /// Destination decode replica.
    pub to_decode: usize,
    /// KV bytes moved.
    pub bytes: u64,
    /// When the transfer started occupying the destination ingress link.
    pub start_ms: f64,
    /// When the KV is fully resident on the decode side.
    pub arrive_ms: f64,
}

/// Aggregate transfer telemetry for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Total KV bytes moved.
    pub bytes: u64,
    /// Total link-busy milliseconds (setup + wire time, all links).
    pub busy_ms: f64,
    /// Transfers aborted mid-migration by an injected link outage or a
    /// destination crash (their requests returned to the front door).
    pub aborted: u64,
}

impl TransferStats {
    /// Mean per-transfer link time in milliseconds.
    pub fn mean_transfer_ms(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.busy_ms / self.transfers as f64
        }
    }
}

/// The in-flight transfer queue: one ingress link per decode replica.
#[derive(Debug)]
pub struct TransferQueue {
    link: KvLink,
    /// Bytes of target-model KV per context token.
    kv_bytes_per_token: u64,
    /// Per-decode-replica ingress link availability.
    link_free_ms: Vec<f64>,
    in_flight: Vec<KvTransfer>,
    /// Wire-time multiplier for an injected link degradation (1.0 when
    /// healthy — an exact IEEE identity, so fault-free runs stay
    /// bit-identical).
    wire_factor: f64,
    /// Telemetry over every enqueued transfer.
    pub stats: TransferStats,
}

impl TransferQueue {
    /// A queue over `n_decode` decode-side ingress links.
    ///
    /// # Panics
    ///
    /// Panics if `n_decode` is zero or the per-token byte count is zero.
    pub fn new(link: KvLink, kv_bytes_per_token: u64, n_decode: usize) -> Self {
        assert!(n_decode > 0, "need at least one decode replica");
        assert!(kv_bytes_per_token > 0, "KV tokens occupy bytes");
        Self {
            link,
            kv_bytes_per_token,
            link_free_ms: vec![0.0; n_decode],
            in_flight: Vec::new(),
            wire_factor: 1.0,
            stats: TransferStats::default(),
        }
    }

    /// Sets the wire-time multiplier (injected link degradation; 1.0
    /// restores the healthy link). Applies to transfers priced or
    /// enqueued from now on; transfers already in flight keep their
    /// arrival times.
    pub fn set_wire_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "wire factor must be positive");
        self.wire_factor = factor;
    }

    /// The degraded (or healthy) time to move `bytes` over the link.
    fn effective_transfer_ms(&self, bytes: u64) -> f64 {
        self.link.transfer_ms(bytes) * self.wire_factor
    }

    /// Bytes of target-model KV per context token (what one migrated
    /// token costs on the wire).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_bytes_per_token
    }

    /// The wire time of migrating a `context_len`-token KV cache,
    /// ignoring ingress-link queueing.
    ///
    /// The dispatcher prices this into a request's handoff time *before*
    /// choosing a destination (queueing depends on the destination, so it
    /// cannot be foreseen at routing time).
    pub fn wire_ms(&self, context_len: u32) -> f64 {
        self.effective_transfer_ms(u64::from(context_len) * self.kv_bytes_per_token)
    }

    /// The wire time of moving `bytes` over the link, ignoring
    /// ingress-link queueing.
    pub fn wire_ms_for_bytes(&self, bytes: u64) -> f64 {
        self.effective_transfer_ms(bytes)
    }

    /// Starts migrating `request` to `to_decode` at time `now_ms`.
    ///
    /// The transfer occupies the destination's ingress link after any
    /// transfer already bound there; returns the arrival time.
    pub fn enqueue(
        &mut self,
        request: LiveRequest,
        from_prefill: usize,
        to_decode: usize,
        now_ms: f64,
    ) -> f64 {
        let bytes = u64::from(request.context_len()) * self.kv_bytes_per_token;
        let start_ms = now_ms.max(self.link_free_ms[to_decode]);
        let wire_ms = self.effective_transfer_ms(bytes);
        let arrive_ms = start_ms + wire_ms;
        self.link_free_ms[to_decode] = arrive_ms;
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.busy_ms += wire_ms;
        self.in_flight.push(KvTransfer {
            request,
            from_prefill,
            to_decode,
            bytes,
            start_ms,
            arrive_ms,
        });
        arrive_ms
    }

    /// Earliest in-flight arrival time, if any transfer is in flight.
    pub fn next_arrival_ms(&self) -> Option<f64> {
        self.in_flight
            .iter()
            .map(|t| t.arrive_ms)
            .min_by(f64::total_cmp)
    }

    /// Removes and returns every transfer that has arrived by `now_ms`,
    /// ordered by arrival time then request id (deterministic).
    pub fn pop_arrivals(&mut self, now_ms: f64) -> Vec<KvTransfer> {
        let mut due: Vec<KvTransfer> = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].arrive_ms <= now_ms {
                due.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by(|a, b| {
            a.arrive_ms
                .total_cmp(&b.arrive_ms)
                .then(a.request.spec.id.cmp(&b.request.spec.id))
        });
        due
    }

    /// Transfers currently in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Aborts every in-flight transfer (the link went dark): the KV
    /// streaming over the wire is lost, the requests return to the
    /// caller in id order (deterministic), and every ingress link is
    /// freed — after the outage the wire starts clean.
    pub fn abort_all(&mut self) -> Vec<KvTransfer> {
        self.stats.aborted += self.in_flight.len() as u64;
        for free in &mut self.link_free_ms {
            *free = 0.0;
        }
        let mut aborted = std::mem::take(&mut self.in_flight);
        aborted.sort_by_key(|t| t.request.spec.id);
        aborted
    }

    /// Aborts the in-flight transfers bound for decode replica `to` (its
    /// crash loses the KV landing on it), returning them in id order and
    /// freeing that ingress link.
    pub fn abort_to(&mut self, to: usize) -> Vec<KvTransfer> {
        let mut aborted = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].to_decode == to {
                aborted.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.stats.aborted += aborted.len() as u64;
        self.link_free_ms[to] = 0.0;
        aborted.sort_by_key(|t| t.request.spec.id);
        aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::LiveRequest;
    use workload::{Category, RequestSpec};

    fn request(id: u64, prompt: u32) -> LiveRequest {
        let mut r = LiveRequest::new(RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: prompt,
            output_len: 4,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: id,
            prefix: None,
        });
        r.advance_prefill(prompt);
        r
    }

    #[test]
    fn transfer_time_scales_with_bytes_and_bandwidth() {
        let fast = KvLink::new(300.0, 0.0);
        let slow = KvLink::new(30.0, 0.0);
        let bytes = 512 * 327_680; // 512 tokens of Llama-70B KV
        assert!((slow.transfer_ms(bytes) - 10.0 * fast.transfer_ms(bytes)).abs() < 1e-9);
        // ~168 MB at 300 GB/s is ~0.56 ms: sub-iteration, i.e. migration
        // over NVLink is cheap relative to a ~25 ms decode step.
        assert!(fast.transfer_ms(bytes) < 1.0);
    }

    #[test]
    fn same_destination_serializes_different_destinations_overlap() {
        let mut q = TransferQueue::new(KvLink::new(10.0, 0.0), 327_680, 2);
        let a = q.enqueue(request(0, 1000), 0, 0, 0.0);
        let b = q.enqueue(request(1, 1000), 0, 0, 0.0);
        let c = q.enqueue(request(2, 1000), 0, 1, 0.0);
        assert!(b > a, "same ingress link serializes");
        assert!((b - 2.0 * a).abs() < 1e-6, "second waits for the first");
        assert!((c - a).abs() < 1e-9, "other replica's link is free");
        assert_eq!(q.in_flight_len(), 3);
    }

    #[test]
    fn pop_arrivals_is_ordered_and_exact() {
        let mut q = TransferQueue::new(KvLink::new(10.0, 0.0), 327_680, 2);
        q.enqueue(request(0, 2000), 0, 0, 0.0);
        q.enqueue(request(1, 100), 0, 1, 0.0);
        let first = q.next_arrival_ms().expect("in flight");
        let due = q.pop_arrivals(first);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].request.spec.id, 1, "small transfer lands first");
        assert_eq!(q.in_flight_len(), 1);
        let rest = q.pop_arrivals(f64::INFINITY);
        assert_eq!(rest.len(), 1);
        assert_eq!(q.stats.transfers, 2);
        assert_eq!(q.stats.bytes, 2100 * 327_680);
    }

    #[test]
    fn wire_ms_matches_enqueue_on_a_free_link() {
        let mut q = TransferQueue::new(KvLink::new(10.0, 0.2), 327_680, 1);
        let est = q.wire_ms(1000);
        let arrive = q.enqueue(request(0, 1000), 0, 0, 5.0);
        assert!((arrive - (5.0 + est)).abs() < 1e-9);
    }

    #[test]
    fn degraded_link_stretches_wire_time() {
        let mut q = TransferQueue::new(KvLink::new(10.0, 0.0), 327_680, 1);
        let healthy = q.wire_ms(1000);
        q.set_wire_factor(4.0);
        assert!((q.wire_ms(1000) - 4.0 * healthy).abs() < 1e-9);
        let arrive = q.enqueue(request(0, 1000), 0, 0, 0.0);
        assert!(
            (arrive - 4.0 * healthy).abs() < 1e-9,
            "enqueue degraded too"
        );
        q.set_wire_factor(1.0);
        assert!((q.wire_ms(1000) - healthy).abs() < 1e-12, "heals exactly");
    }

    #[test]
    fn outage_aborts_in_flight_and_frees_links() {
        let mut q = TransferQueue::new(KvLink::new(10.0, 0.0), 327_680, 2);
        q.enqueue(request(1, 1000), 0, 0, 0.0);
        q.enqueue(request(0, 1000), 0, 1, 0.0);
        let aborted = q.abort_all();
        assert_eq!(aborted.len(), 2);
        assert_eq!(aborted[0].request.spec.id, 0, "id order");
        assert_eq!(q.in_flight_len(), 0);
        assert_eq!(q.stats.aborted, 2);
        assert!(q.next_arrival_ms().is_none());
        // The wire starts clean after the outage.
        let arrive = q.enqueue(request(2, 1000), 0, 0, 100.0);
        assert!((arrive - (100.0 + q.wire_ms(1000))).abs() < 1e-9);
    }

    #[test]
    fn destination_crash_aborts_only_its_transfers() {
        let mut q = TransferQueue::new(KvLink::new(10.0, 0.0), 327_680, 2);
        q.enqueue(request(0, 1000), 0, 0, 0.0);
        q.enqueue(request(1, 1000), 0, 1, 0.0);
        let aborted = q.abort_to(1);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].request.spec.id, 1);
        assert_eq!(q.in_flight_len(), 1, "replica 0's transfer survives");
        assert_eq!(q.stats.aborted, 1);
    }

    #[test]
    fn base_cost_applies_per_transfer() {
        let link = KvLink::new(1000.0, 0.5);
        let t = link.transfer_ms(0);
        assert!((t - 0.5).abs() < 1e-12);
    }
}
