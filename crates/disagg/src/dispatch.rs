//! SLO-aware dispatch across the two pools.
//!
//! The [`Dispatcher`] makes both placement decisions of a disaggregated
//! deployment:
//!
//! * **Prefill side** — arrivals are routed by TTFT tier, the
//!   first-token analogue of the paper's §4.3 two-phase split: tight-TTFT
//!   requests (interactive coding/chat) go to the prefill replica with the
//!   least modelled prefill backlog, while batch-tier requests
//!   (summarization) are *packed* onto already-busy replicas below a load
//!   ceiling, keeping the rest of the pool drained for interactive
//!   arrivals.
//! * **Decode side** — a freshly prefilled request is handed to any
//!   [`cluster::Router`] policy, but carrying its *remaining* TPOT budget:
//!   time already burned in prefill queueing plus the KV transfer's wire
//!   time (the driver routes at the transfer's estimated arrival) is
//!   charged against the request's end-to-end envelope (TTFT SLO +
//!   output × TPOT SLO), so a request that left prefill late — or faces a
//!   slow link — looks tighter to the router and lands on a less-loaded
//!   decode replica.

use crate::prefill::PrefillReplica;
use cluster::{Replica, Router};
use metrics::telemetry::{EventKind, TraceReplica, Tracer};
use serving::LiveRequest;
use workload::RequestSpec;

/// Default TTFT (ms) at or below which a request is dispatch-tight: covers
/// the coding (400 ms) and chatbot (1200 ms) tiers, leaves summarization
/// (8 s) in the batch tier.
pub const DEFAULT_TIGHT_TTFT_MS: f64 = 1_500.0;

/// Default prefill-side packing ceiling (ms of modelled prefill backlog).
pub const DEFAULT_PACK_CEILING_MS: f64 = 1_000.0;

/// Default floor on the remaining-TPOT shading, as a fraction of the
/// request's nominal TPOT SLO.
pub const DEFAULT_MIN_TPOT_FRACTION: f64 = 0.25;

/// The SLO-aware dispatcher of a disaggregated cluster.
#[derive(Debug)]
pub struct Dispatcher {
    /// TTFT SLO (ms) at or below which an arrival is treated as tight.
    pub tight_ttft_ms: f64,
    /// Backlog ceiling above which a prefill replica stops being a packing
    /// target for batch-tier arrivals.
    pub pack_ceiling_ms: f64,
    /// Floor on the remaining-TPOT budget, as a fraction of the nominal
    /// TPOT SLO (a hopeless request is still routed, just as tight).
    pub min_tpot_fraction: f64,
    decode_router: Box<dyn Router>,
    tracer: Tracer,
}

impl Dispatcher {
    /// A dispatcher with default thresholds over the given decode router.
    pub fn new(decode_router: Box<dyn Router>) -> Self {
        Self {
            tight_ttft_ms: DEFAULT_TIGHT_TTFT_MS,
            pack_ceiling_ms: DEFAULT_PACK_CEILING_MS,
            min_tpot_fraction: DEFAULT_MIN_TPOT_FRACTION,
            decode_router,
            tracer: Tracer::off(),
        }
    }

    /// Installs the fleet-shared trace sink: decode-side handoff
    /// decisions are recorded as [`EventKind::RouteDecision`] events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Name of the wrapped decode-side routing policy.
    pub fn decode_router_name(&self) -> String {
        self.decode_router.name()
    }

    /// Chooses the prefill replica for an arrival.
    ///
    /// A replica already holding a cached prefix of the prompt (its
    /// engine-level [`serving::PrefixCache`]) wins outright — longest
    /// prefix first, ties on least backlog, then lowest index — as long
    /// as its backlog stays under the packing ceiling: reusing warm KV
    /// shrinks the prefill to the uncached suffix, which beats any
    /// load-balance gain at moderate load. Cache-cold (or saturated-warm)
    /// arrivals fall back to the TTFT-tier instance of
    /// [`cluster::two_phase_pick`] — tight first-token deadlines to the
    /// least-backlogged replica, batch prompts packed under the ceiling
    /// away from tight work.
    ///
    /// `eligible` must be non-empty and ascending (the driver builds it
    /// from accepting replicas).
    pub fn route_prefill(
        &mut self,
        spec: &RequestSpec,
        now_ms: f64,
        replicas: &[PrefillReplica],
        eligible: &[usize],
    ) -> usize {
        if replicas.iter().any(|r| r.core.prefix.is_some()) {
            let prompt = spec.prompt_tokens();
            let warm = eligible
                .iter()
                .filter(|&&i| replicas[i].drain_estimate_ms(now_ms) <= self.pack_ceiling_ms)
                .map(|&i| (i, replicas[i].cached_prefix_tokens(spec, &prompt)))
                .filter(|&(_, cached)| cached > 0)
                .max_by(|a, b| {
                    a.1.cmp(&b.1)
                        .then_with(|| {
                            replicas[b.0]
                                .drain_estimate_ms(now_ms)
                                .total_cmp(&replicas[a.0].drain_estimate_ms(now_ms))
                        })
                        .then(b.0.cmp(&a.0))
                });
            if let Some((i, _)) = warm {
                return i;
            }
        }
        cluster::two_phase_pick(
            eligible,
            spec.ttft_slo_ms <= self.tight_ttft_ms,
            self.pack_ceiling_ms,
            |i| replicas[i].drain_estimate_ms(now_ms),
            |i| replicas[i].tight_outstanding(self.tight_ttft_ms),
        )
    }

    /// The request's remaining per-token decode budget at time `now_ms`.
    ///
    /// Remaining end-to-end envelope (arrival + TTFT SLO + output × TPOT
    /// SLO, minus time already spent) divided by the output length, clamped
    /// to `[min_tpot_fraction × TPOT SLO, TPOT SLO]`.
    pub fn remaining_tpot_ms(&self, req: &LiveRequest, now_ms: f64) -> f64 {
        let spec = &req.spec;
        let out = f64::from(spec.output_len.max(1));
        let deadline_ms = spec.arrival_ms + spec.ttft_slo_ms + out * spec.tpot_slo_ms;
        let per_token = (deadline_ms - now_ms) / out;
        per_token.clamp(spec.tpot_slo_ms * self.min_tpot_fraction, spec.tpot_slo_ms)
    }

    /// Chooses the decode replica for a freshly prefilled request, via the
    /// wrapped [`cluster::Router`] policy seeing the remaining TPOT budget.
    pub fn route_decode(
        &mut self,
        req: &LiveRequest,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        debug_assert!(!eligible.is_empty());
        let handoff = RequestSpec {
            tpot_slo_ms: self.remaining_tpot_ms(req, now_ms),
            ..req.spec.clone()
        };
        let choice = self
            .decode_router
            .route(&handoff, now_ms, replicas, eligible);
        let choice = if eligible.contains(&choice) {
            choice
        } else {
            debug_assert!(false, "decode router returned ineligible replica {choice}");
            eligible[0]
        };
        if self.tracer.enabled() {
            self.tracer.record(
                now_ms,
                EventKind::RouteDecision {
                    id: req.spec.id,
                    router: self.decode_router.name(),
                    replica: TraceReplica::decode(choice),
                    modeled_load_ms: replicas[choice].drain_estimate_ms(now_ms),
                },
            );
        }
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::RouterKind;
    use serving::SystemConfig;
    use workload::Category;

    fn spec(id: u64, ttft_slo_ms: f64) -> RequestSpec {
        RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: 64,
            output_len: 20,
            tpot_slo_ms: 50.0,
            ttft_slo_ms,
            stream_seed: id,
            prefix: None,
        }
    }

    fn prefill_pool(queued: &[u32]) -> Vec<PrefillReplica> {
        queued
            .iter()
            .enumerate()
            .map(|(id, &prompts)| {
                let mut r = PrefillReplica::new(id, SystemConfig::llama70b(1));
                for p in 0..prompts {
                    r.core.on_arrival(spec(u64::from(p), 8_000.0));
                }
                r
            })
            .collect()
    }

    #[test]
    fn tight_arrivals_go_to_least_backlogged_replica() {
        let replicas = prefill_pool(&[3, 0]);
        let mut d = Dispatcher::new(RouterKind::SloAware.build());
        assert_eq!(d.route_prefill(&spec(9, 400.0), 0.0, &replicas, &[0, 1]), 1);
    }

    #[test]
    fn batch_arrivals_pack_onto_busy_replicas() {
        let replicas = prefill_pool(&[1, 0]);
        let mut d = Dispatcher::new(RouterKind::SloAware.build());
        // Replica 0 is busier but under the ceiling → batch tier packs there.
        assert_eq!(
            d.route_prefill(&spec(9, 8_000.0), 0.0, &replicas, &[0, 1]),
            0
        );
    }

    #[test]
    fn warm_prefill_replica_wins_dispatch() {
        let mut replicas = prefill_pool(&[1, 0]);
        replicas[1] = PrefillReplica::new(1, SystemConfig::llama70b(1).with_prefix_cache(65_536));
        let mut probe = spec(9, 8_000.0);
        probe.prefix = Some(workload::PrefixSpec { seed: 5, len: 32 });
        let prompt = probe.prompt_tokens();
        replicas[1]
            .core
            .prefix
            .as_mut()
            .unwrap()
            .insert(&prompt[..32]);
        let mut d = Dispatcher::new(RouterKind::SloAware.build());
        // Batch tier would pack onto busier replica 0; warm KV on 1 wins.
        assert_eq!(d.route_prefill(&probe, 0.0, &replicas, &[0, 1]), 1);
        // A disjoint prompt still packs onto the busy replica.
        assert_eq!(
            d.route_prefill(&spec(10, 8_000.0), 0.0, &replicas, &[0, 1]),
            0
        );
    }

    #[test]
    fn remaining_budget_shrinks_with_elapsed_time() {
        let d = Dispatcher::new(RouterKind::SloAware.build());
        let req = LiveRequest::new(spec(1, 1_200.0));
        let fresh = d.remaining_tpot_ms(&req, 0.0);
        assert!((fresh - 50.0).abs() < 1e-9, "unspent envelope = full SLO");
        let late = d.remaining_tpot_ms(&req, 1_700.0);
        assert!(late < fresh, "late handoff looks tighter");
        let hopeless = d.remaining_tpot_ms(&req, 1e9);
        assert!((hopeless - 50.0 * DEFAULT_MIN_TPOT_FRACTION).abs() < 1e-9);
    }

    #[test]
    fn decode_handoff_respects_eligibility() {
        use adaserve_core::AdaServeEngine;
        use cluster::Replica;
        let replicas: Vec<Replica> = (0..2)
            .map(|id| Replica::new(id, Box::new(AdaServeEngine::new(SystemConfig::llama70b(1)))))
            .collect();
        let mut d = Dispatcher::new(RouterKind::RoundRobin.build());
        let req = LiveRequest::new(spec(3, 400.0));
        for _ in 0..4 {
            let pick = d.route_decode(&req, 0.0, &replicas, &[1]);
            assert_eq!(pick, 1);
        }
    }
}
