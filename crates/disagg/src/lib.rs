//! Disaggregated prefill/decode serving on the deterministic substrate.
//!
//! The paper's SLO-customized speculative decoding (§4) controls TPOT; at
//! scale, TTFT attainment is dominated by prefill/decode *interference* —
//! long prompts stealing iterations from running decodes. Disaggregated
//! deployments (DistServe, Splitwise, and the StreamServe/SLOs-Serve line
//! of work) split the fleet instead: prefill and decode run on separate
//! replica pools and finished prompts migrate their KV cache across the
//! interconnect. This crate models that deployment mode end to end:
//!
//! * [`prefill`] — a [`PrefillPool`] of [`PrefillReplica`]s that run
//!   chunked prefill *only*, admitting and sizing chunks by TTFT tier;
//! * [`migrate`] — the KV-migration model: a [`KvLink`] priced from the
//!   [`roofline`] interconnect bandwidth (per-token KV bytes across all
//!   layers), with an in-flight [`TransferQueue`] that serializes
//!   transfers per decode-side ingress link while decode iterations
//!   continue underneath (transfers overlap compute);
//! * [`dispatch`] — the SLO-aware [`Dispatcher`]: TTFT-tier routing and
//!   admission on the prefill side (preferring a replica that already
//!   holds a cached prefix of the prompt — see [`serving::PrefixCache`] —
//!   when one is warm and unsaturated), then handoff to the decode-side
//!   router (any [`cluster::Router`]) carrying the request's *remaining*
//!   TPOT budget;
//! * [`driver`] — the [`DisaggCluster`]: both pools under one global
//!   clock, implementing [`serving::Deployment`] so the same
//!   [`serving::ServeSession`] front door that drives colocated and
//!   cluster deployments drives this one (drain/join scaling on either
//!   pool via the session's timeline, completion records merged into one
//!   stream via [`metrics`]). The legacy batch `DisaggCluster::run`
//!   remains as a deprecated, output-equivalent shim.
//!
//! Decode replicas are ordinary [`cluster::Replica`]s wrapping any
//! [`serving::ServingEngine`] (AdaServe's SCSD decode, or a baseline), so
//! colocated and disaggregated deployments of the *same* engines compare
//! apples-to-apples at equal aggregate hardware — the `fig_disagg_sweep`
//! bench binary sweeps pool split × request rate × link bandwidth against
//! the colocated [`cluster::Cluster`] baseline.

pub mod dispatch;
pub mod driver;
pub mod migrate;
pub mod prefill;

pub use dispatch::Dispatcher;
pub use driver::{
    DisaggCluster, DisaggRunResult, DisaggScalingEvent, Pool, PrefillStats, ScalingAction,
};
pub use migrate::{KvLink, KvTransfer, TransferQueue, TransferStats};
pub use prefill::{PrefillPool, PrefillReplica};
