//! The disaggregated discrete-event driver.
//!
//! One global clock orders five event kinds: request arrivals (dispatched
//! to the prefill pool), elastic-scaling events (drain/join on either
//! pool), prefill iterations, KV-transfer arrivals (migrated requests
//! admitted into decode replicas) and decode iterations. Decode replicas
//! are ordinary [`cluster::Replica`]s, so the decode pool runs the same
//! engines — and the same stall/clock bookkeeping — as a colocated
//! [`cluster::Cluster`]. Completion records from every decode replica
//! merge into one fleet-wide stream via [`metrics::merge_by_completion`].

use crate::dispatch::Dispatcher;
use crate::migrate::{KvLink, TransferQueue, TransferStats};
use crate::prefill::{PrefillPool, PrefillReplica};
pub use cluster::ScalingAction;
use cluster::{Replica, ReplicaResult};
use metrics::{merge_by_completion, ClusterReport, RequestRecord, SloReport};
use serving::{finalize_run, LiveRequest, RunError, RunOptions, ServingEngine};
use std::collections::VecDeque;
use workload::Workload;

/// Which pool a scaling event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// The prefill-only pool.
    Prefill,
    /// The decode pool.
    Decode,
}

/// A scheduled drain/join of one replica in one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggScalingEvent {
    /// Simulation time at which the event applies.
    pub at_ms: f64,
    /// Target pool.
    pub pool: Pool,
    /// Target replica index within the pool.
    pub replica: usize,
    /// Drain or join.
    pub action: ScalingAction,
}

/// One prefill replica's share of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillStats {
    /// Replica index within the prefill pool.
    pub replica: usize,
    /// Arrivals the dispatcher placed here.
    pub routed: u64,
    /// Requests whose prefill completed here.
    pub prefilled_requests: u64,
    /// Prompt tokens prefilled here.
    pub prefill_tokens: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Local clock at the end of the run.
    pub end_ms: f64,
}

/// Outcome of serving one workload on a disaggregated cluster.
#[derive(Debug, Clone)]
pub struct DisaggRunResult {
    /// Decode-side routing policy name.
    pub decode_router: String,
    /// All completion records, merged across decode replicas.
    pub records: Vec<RequestRecord>,
    /// Per-prefill-replica accounting.
    pub per_prefill: Vec<PrefillStats>,
    /// Per-decode-replica results, in replica order.
    pub per_decode: Vec<ReplicaResult>,
    /// KV-migration telemetry.
    pub transfers: TransferStats,
    /// Global simulation end time (latest clock in either pool).
    pub end_ms: f64,
    /// Iterations executed across both pools.
    pub iterations: u64,
}

impl DisaggRunResult {
    /// Fleet-wide SLO report over the merged records.
    pub fn report(&self) -> SloReport {
        SloReport::from_records(&self.records)
    }

    /// Per-decode-replica + merged reports.
    pub fn cluster_report(&self) -> ClusterReport {
        ClusterReport::from_streams(
            self.per_decode
                .iter()
                .map(|r| (r.label(), r.result.records.clone()))
                .collect(),
        )
    }
}

/// A disaggregated cluster: a prefill pool and a decode pool under one
/// dispatcher and one KV-migration fabric.
#[derive(Debug)]
pub struct DisaggCluster {
    prefill: PrefillPool,
    decode: Vec<Replica>,
    dispatcher: Dispatcher,
    transfers: TransferQueue,
    /// Migrated requests whose decode-side KV reservation failed, parked
    /// per decode replica until blocks free up.
    landing: Vec<VecDeque<LiveRequest>>,
    events: Vec<DisaggScalingEvent>,
}

impl DisaggCluster {
    /// Assembles a cluster from a prefill pool, decode engines, a
    /// dispatcher and a migration link.
    ///
    /// KV bytes per migrated token are taken from the first prefill
    /// replica's target model (the pools serve one model).
    ///
    /// # Panics
    ///
    /// Panics if `decode_engines` is empty.
    pub fn new(
        prefill: PrefillPool,
        decode_engines: Vec<Box<dyn ServingEngine>>,
        dispatcher: Dispatcher,
        link: KvLink,
    ) -> Self {
        assert!(!decode_engines.is_empty(), "decode pool needs a replica");
        let kv_bytes = prefill.replicas[0]
            .core
            .config
            .testbed
            .target
            .model()
            .kv_bytes_per_token();
        let n_decode = decode_engines.len();
        let decode: Vec<Replica> = decode_engines
            .into_iter()
            .enumerate()
            .map(|(id, engine)| Replica::new(id, engine))
            .collect();
        Self {
            prefill,
            decode,
            dispatcher,
            transfers: TransferQueue::new(link, kv_bytes, n_decode),
            landing: (0..n_decode).map(|_| VecDeque::new()).collect(),
            events: Vec::new(),
        }
    }

    /// Schedules elastic-scaling (drain/join) events on either pool.
    ///
    /// # Panics
    ///
    /// Panics if an event names a replica outside its pool.
    pub fn with_events(mut self, mut events: Vec<DisaggScalingEvent>) -> Self {
        for e in &events {
            let len = match e.pool {
                Pool::Prefill => self.prefill.replicas.len(),
                Pool::Decode => self.decode.len(),
            };
            assert!(e.replica < len, "event names no replica in its pool");
        }
        events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        self.events = events;
        self
    }

    /// The slowest decode replica's baseline decode latency (workloads
    /// should resolve baseline-relative SLOs against this).
    pub fn decode_max_baseline_ms(&self) -> f64 {
        self.decode
            .iter()
            .map(Replica::baseline_ms)
            .fold(0.0, f64::max)
    }

    /// Read-only view of the prefill pool.
    pub fn prefill_replicas(&self) -> &[PrefillReplica] {
        &self.prefill.replicas
    }

    /// Read-only view of the decode pool.
    pub fn decode_replicas(&self) -> &[Replica] {
        &self.decode
    }

    /// Indices of decode replicas accepting migrations; the whole pool
    /// when everything is draining (degrade, don't drop).
    fn decode_eligible(&self) -> Vec<usize> {
        cluster::accepting_or_all(self.decode.iter().map(|r| r.accepting))
    }

    /// Tries to land every parked migration on decode replica `id`. An
    /// admitted request leaves the replica's inbound view — the engine's
    /// own queues carry it from here.
    fn drain_landing(&mut self, id: usize) {
        while let Some(req) = self.landing[id].pop_front() {
            let tokens = u64::from(req.remaining());
            let slo = req.spec.tpot_slo_ms;
            match self.decode[id].engine.core_mut().admit_migrated(req) {
                Ok(()) => {
                    let inbound = &mut self.decode[id].inbound;
                    inbound.requests -= 1;
                    inbound.decode_tokens = inbound.decode_tokens.saturating_sub(tokens);
                    if let Some(k) = inbound.tpot_slos.iter().position(|&s| s == slo) {
                        inbound.tpot_slos.swap_remove(k);
                    }
                }
                Err(req) => {
                    self.landing[id].push_front(req);
                    break;
                }
            }
        }
    }

    /// Serves `workload` to completion across both pools.
    ///
    /// Event ordering at equal timestamps: scaling events first (arrivals
    /// at the same instant see the new topology), then KV-transfer
    /// arrivals (migrated requests join decode batches before the batch
    /// steps), then request arrivals, then the earliest-clock replica
    /// iterates (prefill before decode on exact clock ties).
    pub fn run(
        mut self,
        workload: &Workload,
        options: RunOptions,
    ) -> Result<DisaggRunResult, RunError> {
        let requests = &workload.requests;
        let mut next_arrival = 0usize;
        let mut next_event = 0usize;
        let mut iterations = 0u64;

        loop {
            let t_arr = requests
                .get(next_arrival)
                .map_or(f64::INFINITY, |r| r.arrival_ms);
            let t_evt = self
                .events
                .get(next_event)
                .map_or(f64::INFINITY, |e| e.at_ms);
            let t_xfer = self.transfers.next_arrival_ms().unwrap_or(f64::INFINITY);
            let pre_stepper = self
                .prefill
                .replicas
                .iter()
                .filter(|r| r.has_work())
                .min_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms).then(a.id.cmp(&b.id)))
                .map(|r| (r.clock_ms, r.id));
            let t_pre = pre_stepper.map_or(f64::INFINITY, |(t, _)| t);
            let dec_stepper = self
                .decode
                .iter()
                .filter(|r| r.has_work())
                .min_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms).then(a.id.cmp(&b.id)))
                .map(|r| (r.clock_ms, r.id));
            let t_dec = dec_stepper.map_or(f64::INFINITY, |(t, _)| t);

            let t = t_arr.min(t_evt).min(t_xfer).min(t_pre).min(t_dec);
            if t.is_infinite() {
                break; // Nothing due anywhere.
            }

            if t_evt <= t {
                let e = self.events[next_event];
                let accepting = matches!(e.action, ScalingAction::Join);
                match e.pool {
                    Pool::Prefill => {
                        let r = &mut self.prefill.replicas[e.replica];
                        r.accepting = accepting;
                        r.clock_ms = r.clock_ms.max(e.at_ms);
                    }
                    Pool::Decode => {
                        let r = &mut self.decode[e.replica];
                        r.accepting = accepting;
                        r.clock_ms = r.clock_ms.max(e.at_ms);
                    }
                }
                next_event += 1;
                continue;
            }

            if t_xfer <= t {
                for transfer in self.transfers.pop_arrivals(t_xfer) {
                    let id = transfer.to_decode;
                    let r = &mut self.decode[id];
                    r.clock_ms = r.clock_ms.max(transfer.arrive_ms);
                    r.routed += 1;
                    self.landing[id].push_back(transfer.request);
                    self.drain_landing(id);
                }
                continue;
            }

            if t_arr <= t {
                let spec = requests[next_arrival].clone();
                let eligible = self.prefill.eligible();
                let choice =
                    self.dispatcher
                        .route_prefill(&spec, t_arr, &self.prefill.replicas, &eligible);
                let choice = if eligible.contains(&choice) {
                    choice
                } else {
                    debug_assert!(false, "dispatcher returned ineligible prefill {choice}");
                    eligible[0]
                };
                let r = &mut self.prefill.replicas[choice];
                r.core.on_arrival(spec);
                r.clock_ms = r.clock_ms.max(t_arr);
                r.routed += 1;
                next_arrival += 1;
                continue;
            }

            if t_pre <= t_dec {
                // Prefill iteration; completed prompts start migrating.
                let (_, id) = pre_stepper.expect("t_pre was finite");
                let done = self.prefill.replicas[id].step()?;
                let now = self.prefill.replicas[id].clock_ms;
                iterations += 1;
                if self.prefill.replicas[id].iterations > options.max_iterations {
                    return Err(RunError::IterationCap);
                }
                if now > options.max_sim_ms {
                    return Err(RunError::TimeCap);
                }
                let eligible = self.decode_eligible();
                for req in done {
                    // Route at the transfer's estimated arrival (wire time
                    // is destination-independent; ingress queueing is not
                    // foreseeable before a destination is chosen), so the
                    // remaining-TPOT shading charges the migration delay.
                    let est_arrival = now + self.transfers.wire_ms(req.context_len());
                    let to =
                        self.dispatcher
                            .route_decode(&req, est_arrival, &self.decode, &eligible);
                    // Count the migration against the destination's load
                    // view immediately, so the next handoff in this burst
                    // (and any until the transfer lands) sees it instead
                    // of dogpiling one replica's ingress link.
                    let inbound = &mut self.decode[to].inbound;
                    inbound.requests += 1;
                    inbound.decode_tokens += u64::from(req.remaining());
                    inbound.tpot_slos.push(req.spec.tpot_slo_ms);
                    self.transfers.enqueue(req, id, to, now);
                }
                continue;
            }

            // Decode iteration. Migrated requests sitting in the batch are
            // stamped *before* the step, at the iteration's start clock —
            // the colocated semantics of `decode_start_ms` ("time the first
            // decode iteration started"), which engines whose own stamping
            // assumes a local prefill pass cannot provide for them.
            let (_, id) = dec_stepper.expect("t_dec was finite");
            let r = &mut self.decode[id];
            r.engine.core_mut().stamp_decode_starts(r.clock_ms);
            r.step_once()?;
            iterations += 1;
            if r.engine.core().iterations > options.max_iterations {
                return Err(RunError::IterationCap);
            }
            if r.clock_ms > options.max_sim_ms {
                return Err(RunError::TimeCap);
            }
            // Finished requests freed KV: land any parked migrations.
            self.drain_landing(id);
        }

        // A migration still parked once everything else drained can never
        // be admitted (its context exceeds the replica's whole pool):
        // error out cleanly, as the colocated driver does for oversized
        // requests.
        if self.landing.iter().any(|parked| !parked.is_empty()) {
            return Err(RunError::KvCapacity);
        }

        let end_ms = self
            .prefill
            .replicas
            .iter()
            .map(|r| r.clock_ms)
            .chain(self.decode.iter().map(|r| r.clock_ms))
            .fold(0.0, f64::max);
        let per_prefill: Vec<PrefillStats> = self
            .prefill
            .replicas
            .iter()
            .map(|r| PrefillStats {
                replica: r.id,
                routed: r.routed,
                prefilled_requests: r.prefilled_requests,
                prefill_tokens: r.prefill_tokens,
                iterations: r.iterations,
                end_ms: r.clock_ms,
            })
            .collect();
        let per_decode: Vec<ReplicaResult> = self
            .decode
            .iter_mut()
            .map(|r| ReplicaResult {
                replica: r.id,
                routed: r.routed,
                result: finalize_run(r.engine.as_mut(), r.clock_ms),
            })
            .collect();
        let records = merge_by_completion(
            per_decode
                .iter()
                .map(|r| r.result.records.clone())
                .collect(),
        );
        Ok(DisaggRunResult {
            decode_router: self.dispatcher.decode_router_name(),
            records,
            per_prefill,
            per_decode,
            transfers: self.transfers.stats,
            end_ms,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Dispatcher;
    use cluster::RouterKind;
    use serving::SystemConfig;
    use workload::{Category, RequestSpec};

    fn tiny_workload(n: u64, gap_ms: f64) -> Workload {
        let requests = (0..n)
            .map(|id| {
                let category = Category::ALL[(id % 3) as usize];
                RequestSpec {
                    id,
                    category,
                    arrival_ms: id as f64 * gap_ms,
                    prompt_len: 16 + (id as u32 % 5) * 40,
                    output_len: 6,
                    tpot_slo_ms: 50.0,
                    ttft_slo_ms: category.ttft_slo().resolve(25.0),
                    stream_seed: id ^ 0xD15A,
                }
            })
            .collect();
        Workload {
            requests,
            description: "tiny disagg".into(),
        }
    }

    fn cluster(n_prefill: usize, n_decode: usize) -> DisaggCluster {
        let prefill = PrefillPool::new(vec![SystemConfig::llama70b(3); n_prefill]);
        let decode: Vec<Box<dyn ServingEngine>> = (0..n_decode)
            .map(|_| {
                Box::new(adaserve_core::AdaServeEngine::new(SystemConfig::llama70b(
                    3,
                ))) as Box<dyn ServingEngine>
            })
            .collect();
        DisaggCluster::new(
            prefill,
            decode,
            Dispatcher::new(RouterKind::SloAware.build()),
            KvLink::new(300.0, 0.05),
        )
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let wl = tiny_workload(12, 8.0);
        let result = cluster(1, 2).run(&wl, RunOptions::default()).expect("run");
        assert_eq!(result.records.len(), 12);
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "no duplicates across migration");
        assert_eq!(result.transfers.transfers, 12, "every request migrated");
        for r in &result.records {
            assert_eq!(r.output_tokens, 6, "no tokens lost in migration");
        }
    }

    #[test]
    fn ttft_includes_prefill_and_transfer() {
        let wl = tiny_workload(4, 50.0);
        let result = cluster(1, 1).run(&wl, RunOptions::default()).unwrap();
        for r in &result.records {
            assert!(
                r.decode_start_ms > r.arrival_ms,
                "decode starts after arrival"
            );
            assert!(r.ttft_ms() > 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let wl = tiny_workload(10, 6.0);
        let a = cluster(2, 2).run(&wl, RunOptions::default()).unwrap();
        let b = cluster(2, 2).run(&wl, RunOptions::default()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.end_ms, b.end_ms);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn drained_prefill_replica_takes_no_arrivals() {
        let wl = tiny_workload(6, 30.0);
        let result = cluster(2, 1)
            .with_events(vec![DisaggScalingEvent {
                at_ms: -1.0,
                pool: Pool::Prefill,
                replica: 1,
                action: ScalingAction::Drain,
            }])
            .run(&wl, RunOptions::default())
            .unwrap();
        assert_eq!(result.per_prefill[0].routed, 6);
        assert_eq!(result.per_prefill[1].routed, 0);
        assert_eq!(result.records.len(), 6, "drain loses nothing");
    }

    #[test]
    fn drained_decode_replica_receives_no_migrations() {
        let wl = tiny_workload(6, 30.0);
        let result = cluster(1, 2)
            .with_events(vec![DisaggScalingEvent {
                at_ms: -1.0,
                pool: Pool::Decode,
                replica: 0,
                action: ScalingAction::Drain,
            }])
            .run(&wl, RunOptions::default())
            .unwrap();
        assert_eq!(result.per_decode[0].result.records.len(), 0);
        assert_eq!(result.per_decode[1].result.records.len(), 6);
    }

    #[test]
    fn empty_workload_is_a_no_op() {
        let wl = Workload {
            requests: Vec::new(),
            description: "empty".into(),
        };
        let result = cluster(1, 1).run(&wl, RunOptions::default()).unwrap();
        assert!(result.records.is_empty());
        assert_eq!(result.end_ms, 0.0);
        assert_eq!(result.transfers.transfers, 0);
    }

    #[test]
    fn burst_handoffs_spread_across_decode_replicas() {
        // Six same-instant short prompts finish in one prefill iteration,
        // so the dispatcher routes six migrations back to back with no
        // intervening decode progress. The inbound-work accounting must
        // make each handoff visible to the next: a load-aware router then
        // spreads the burst instead of dogpiling one ingress link.
        let requests = (0..6)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: 0.0,
                prompt_len: 24,
                output_len: 8,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_200.0,
                stream_seed: id,
            })
            .collect();
        let wl = Workload {
            requests,
            description: "burst".into(),
        };
        let result = cluster(1, 2).run(&wl, RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 6);
        for d in &result.per_decode {
            assert!(
                d.routed > 0,
                "decode-{} received no share of the burst: {:?}",
                d.replica,
                result
                    .per_decode
                    .iter()
                    .map(|r| r.routed)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn oversized_migration_errors_cleanly() {
        // A prompt that fits the prefill pool but exceeds a decode
        // replica's entire KV pool can never land: the run must return an
        // error, not hang or panic (mirrors the colocated driver's
        // oversized-request behavior).
        let wl = Workload {
            requests: vec![RequestSpec {
                id: 0,
                category: Category::Summarization,
                arrival_ms: 0.0,
                prompt_len: 500,
                output_len: 4,
                tpot_slo_ms: 150.0,
                ttft_slo_ms: 8_000.0,
                stream_seed: 1,
            }],
            description: "oversized".into(),
        };
        let prefill = PrefillPool::new(vec![SystemConfig::llama70b(3)]);
        let mut engine = adaserve_core::AdaServeEngine::new(SystemConfig::llama70b(3));
        // 4 blocks × 16 tokens = 64-token decode pool vs a 500-token context.
        engine.core_mut().blocks = serving::BlockManager::new(4, 16);
        let err = DisaggCluster::new(
            prefill,
            vec![Box::new(engine)],
            Dispatcher::new(RouterKind::SloAware.build()),
            KvLink::new(300.0, 0.05),
        )
        .run(&wl, RunOptions::default())
        .unwrap_err();
        assert_eq!(err, RunError::KvCapacity);
    }

    #[test]
    fn migrated_requests_are_stamped_at_decode_iteration_start() {
        // decode_start_ms must be the *start* of the first decode
        // iteration (colocated semantics), so completion never coincides
        // with it and single-iteration requests cannot report zero TPOT.
        let wl = tiny_workload(5, 20.0);
        let result = cluster(1, 1).run(&wl, RunOptions::default()).unwrap();
        for r in &result.records {
            assert!(
                r.completion_ms > r.decode_start_ms,
                "request {}: completion {} <= decode start {}",
                r.id,
                r.completion_ms,
                r.decode_start_ms
            );
            assert!(r.avg_tpot_ms() > 0.0, "request {} reports zero TPOT", r.id);
        }
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let wl = tiny_workload(6, 1.0);
        let err = cluster(1, 1)
            .run(
                &wl,
                RunOptions {
                    max_sim_ms: f64::MAX,
                    max_iterations: 1,
                },
            )
            .unwrap_err();
        assert_eq!(err, RunError::IterationCap);
    }
}
