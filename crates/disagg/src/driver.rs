//! The disaggregated discrete-event driver.
//!
//! One global clock orders five event kinds: request arrivals (dispatched
//! to the prefill pool), elastic-scaling events (drain/join on either
//! pool), prefill iterations, KV-transfer arrivals (migrated requests
//! admitted into decode replicas) and decode iterations. Decode replicas
//! are ordinary [`cluster::Replica`]s, so the decode pool runs the same
//! engines — and the same stall/clock bookkeeping — as a colocated
//! [`cluster::Cluster`]. Completion records from every decode replica
//! merge into one fleet-wide stream via [`metrics::merge_by_completion`].

use crate::dispatch::Dispatcher;
use crate::migrate::{KvLink, KvTransfer, TransferQueue, TransferStats};
use crate::prefill::{PrefillPool, PrefillReplica};
pub use cluster::ScalingAction;
use cluster::{InboundWork, Replica, ReplicaResult};
use metrics::telemetry::{EventKind, GaugeSample, TraceReplica, Tracer};
use metrics::{ClusterReport, HotLoopStats, RequestRecord, SloReport};
use serving::{
    core_gauges, Deployment, DeploymentEvent, DeploymentStep, ExecMode, FaultKind,
    LifecycleTracker, LiveRequest, ReplicaAddr, RunError, RunOptions, RunResult, ServeSession,
    ServingEngine, ShardedExecutor, UnitStats,
};
use std::collections::{HashSet, VecDeque};
use std::sync::Mutex;
use workload::{RequestSpec, Workload};

pub use serving::Pool;

/// A scheduled drain/join of one replica in one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggScalingEvent {
    /// Simulation time at which the event applies.
    pub at_ms: f64,
    /// Target pool.
    pub pool: Pool,
    /// Target replica index within the pool.
    pub replica: usize,
    /// Drain or join.
    pub action: ScalingAction,
}

/// One prefill replica's share of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillStats {
    /// Replica index within the prefill pool.
    pub replica: usize,
    /// Arrivals the dispatcher placed here.
    pub routed: u64,
    /// Requests whose prefill completed here.
    pub prefilled_requests: u64,
    /// Prompt tokens prefilled here.
    pub prefill_tokens: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Local clock at the end of the run.
    pub end_ms: f64,
}

/// Outcome of serving one workload on a disaggregated cluster.
#[derive(Debug, Clone)]
pub struct DisaggRunResult {
    /// Decode-side routing policy name.
    pub decode_router: String,
    /// All completion records, merged across decode replicas.
    pub records: Vec<RequestRecord>,
    /// Per-prefill-replica accounting.
    pub per_prefill: Vec<PrefillStats>,
    /// Per-decode-replica results, in replica order.
    pub per_decode: Vec<ReplicaResult>,
    /// KV-migration telemetry.
    pub transfers: TransferStats,
    /// Global simulation end time (latest clock in either pool).
    pub end_ms: f64,
    /// Iterations executed across both pools.
    pub iterations: u64,
}

impl DisaggRunResult {
    /// Fleet-wide SLO report over the merged records.
    pub fn report(&self) -> SloReport {
        SloReport::from_records(&self.records)
    }

    /// Per-decode-replica + merged reports.
    pub fn cluster_report(&self) -> ClusterReport {
        ClusterReport::from_streams(
            self.per_decode
                .iter()
                .map(|r| (r.label(), r.result.records.clone()))
                .collect(),
        )
    }
}

/// A disaggregated cluster: a prefill pool and a decode pool under one
/// dispatcher and one KV-migration fabric.
///
/// A `DisaggCluster` implements [`Deployment`], so the standard way to
/// run it is through a [`ServeSession`] (open-loop or online); the legacy
/// [`DisaggCluster::run`] remains as a deprecated, output-equivalent
/// shim.
#[derive(Debug)]
pub struct DisaggCluster {
    prefill: PrefillPool,
    decode: Vec<Replica>,
    dispatcher: Dispatcher,
    transfers: TransferQueue,
    /// Migrated requests whose decode-side KV reservation failed, parked
    /// per decode replica until blocks free up.
    landing: Vec<VecDeque<LiveRequest>>,
    events: Vec<DisaggScalingEvent>,
    /// Lifecycle announcements of the prefill pool; at handoff a
    /// request's state transfers to its decode replica's own tracker
    /// ([`Replica::mark_admitted`]), so decode replicas can scan — and
    /// step — independently of each other.
    prefill_tracker: LifecycleTracker,
    /// Per-prefill-core high-water marks (always 0: prefill replicas
    /// produce no completion records; kept so lifecycle scans are uniform).
    prefill_finished_seen: Vec<usize>,
    /// Driver-level [`ExecMode`] override for decode-pool stepping; when
    /// unset, [`RunOptions::exec`] (the session's mode) applies. Output
    /// is record-identical across modes — see [`serving::exec`].
    exec_override: Option<ExecMode>,
    /// The persistent worker pool behind [`ExecMode::Sharded`], created
    /// lazily on the first multi-worker decode batch and reused for every
    /// batch of every `serve()` call on this cluster.
    pool: Option<ShardedExecutor>,
    /// Fleet-shared trace sink for prefill-side events (dispatch, chunks,
    /// KV transfers); decode replicas and the dispatcher hold clones of
    /// the same log.
    tracer: Tracer,
    /// Requests whose prefill has started (first entry into a prefill
    /// running batch); populated only while tracing, drained at handoff.
    prefill_started: HashSet<u64>,
    /// Whether the KV interconnect is dark (injected link outage). While
    /// set, no transfer departs: the prefill pool freezes as backpressure
    /// — its output has nowhere to go — and resumes when the link heals.
    link_down: bool,
}

/// One checked decode iteration: stamp migrated requests at the
/// iteration's start clock, step, enforce the run caps, land parked
/// migrations freed by finished requests, scan lifecycle. This is the
/// single body **both** the sequential [`Deployment::step`] decode branch
/// and the parallel [`decode_run_until`] loop execute, so the two
/// stepping modes cannot diverge.
fn decode_step_checked(
    replica: &mut Replica,
    landing: &mut VecDeque<LiveRequest>,
    id: usize,
    options: &RunOptions,
    events: &mut Vec<DeploymentEvent>,
) -> Result<f64, RunError> {
    replica
        .engine
        .core_mut()
        .stamp_decode_starts(replica.clock_ms);
    let latency_ms = replica.step_once()?;
    if replica.engine.core().iterations > options.max_iterations {
        return Err(RunError::iteration_cap().at(Pool::Decode, id));
    }
    if replica.clock_ms > options.max_sim_ms {
        return Err(RunError::time_cap().at(Pool::Decode, id));
    }
    drain_landing_on(replica, landing);
    replica.scan_lifecycle(ReplicaAddr::serving(id), events);
    Ok(latency_ms)
}

/// The per-replica body of parallel decode stepping:
/// [`decode_step_checked`] looped until the replica reaches `horizon_ms`
/// or runs out of work.
fn decode_run_until(
    replica: &mut Replica,
    landing: &mut VecDeque<LiveRequest>,
    id: usize,
    horizon_ms: f64,
    options: &RunOptions,
    events: &mut Vec<DeploymentEvent>,
) -> Result<(), RunError> {
    while replica.has_work() && replica.clock_ms < horizon_ms {
        decode_step_checked(replica, landing, id, options, events)?;
    }
    Ok(())
}

/// Tries to land every migration parked for `replica`. An admitted
/// request leaves the replica's inbound view — the engine's own queues
/// carry it from here. Free-standing so parallel decode workers can call
/// it on their disjoint (replica, landing-queue) pairs.
fn drain_landing_on(replica: &mut Replica, landing: &mut VecDeque<LiveRequest>) {
    while let Some(req) = landing.pop_front() {
        let tokens = u64::from(req.remaining());
        let slo = req.spec.tpot_slo_ms;
        match replica.engine.core_mut().admit_migrated(req) {
            Ok(()) => {
                let inbound = &mut replica.inbound;
                inbound.requests -= 1;
                inbound.decode_tokens = inbound.decode_tokens.saturating_sub(tokens);
                if let Some(k) = inbound.tpot_slos.iter().position(|&s| s == slo) {
                    inbound.tpot_slos.swap_remove(k);
                }
            }
            Err(req) => {
                landing.push_front(req);
                break;
            }
        }
    }
}

impl DisaggCluster {
    /// Assembles a cluster from a prefill pool, decode engines, a
    /// dispatcher and a migration link.
    ///
    /// KV bytes per migrated token are taken from the first prefill
    /// replica's target model (the pools serve one model).
    ///
    /// # Panics
    ///
    /// Panics if `decode_engines` is empty.
    pub fn new(
        prefill: PrefillPool,
        decode_engines: Vec<Box<dyn ServingEngine>>,
        dispatcher: Dispatcher,
        link: KvLink,
    ) -> Self {
        assert!(!decode_engines.is_empty(), "decode pool needs a replica");
        let kv_bytes = prefill.replicas[0]
            .core
            .config
            .testbed
            .target
            .model()
            .kv_bytes_per_token();
        let n_decode = decode_engines.len();
        let n_prefill = prefill.replicas.len();
        let decode: Vec<Replica> = decode_engines
            .into_iter()
            .enumerate()
            .map(|(id, engine)| Replica::new(id, engine))
            .collect();
        Self {
            prefill,
            decode,
            dispatcher,
            transfers: TransferQueue::new(link, kv_bytes, n_decode),
            landing: (0..n_decode).map(|_| VecDeque::new()).collect(),
            events: Vec::new(),
            prefill_tracker: LifecycleTracker::default(),
            prefill_finished_seen: vec![0; n_prefill],
            exec_override: None,
            pool: None,
            tracer: Tracer::off(),
            prefill_started: HashSet::new(),
            link_down: false,
        }
    }

    /// Pins how the decode pool executes batched replica stepping,
    /// overriding the session-level [`RunOptions::exec`] (see
    /// [`serving::exec::ExecMode`]).
    ///
    /// Decode replicas interact with the rest of the system only through
    /// KV-transfer landings and the dispatcher's load reads — both of
    /// which happen at prefill/transfer events, never between them — so
    /// batch-stepping each decode replica to the next such event is
    /// **record-for-record identical** to sequential stepping (pinned by
    /// `tests/output_equivalence.rs` and the disagg proptests). Prefill
    /// replicas and the transfer fabric stay sequential (they share
    /// routing state).
    #[must_use]
    pub fn with_exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec_override = Some(exec);
        self
    }

    /// Enables/disables parallel decode-pool stepping.
    ///
    /// # Deprecated
    ///
    /// This maps to [`DisaggCluster::with_exec_mode`] with
    /// [`ExecMode::Sharded`] / [`ExecMode::Sequential`]:
    ///
    /// ```
    /// use disagg::DisaggCluster;
    /// use serving::ExecMode;
    ///
    /// // before: cluster.with_parallel_stepping(parallel)
    /// fn migrated(cluster: DisaggCluster, parallel: bool) -> DisaggCluster {
    ///     cluster.with_exec_mode(if parallel {
    ///         ExecMode::Sharded { workers: None }
    ///     } else {
    ///         ExecMode::Sequential
    ///     })
    /// }
    /// ```
    ///
    /// Note that the thread-per-step design this flag used to toggle
    /// *lost* to sequential stepping at small fleets (see the historical
    /// `BENCH_perf.json` 4-replica rows) — the persistent sharded
    /// executor behind `ExecMode` is what makes batched stepping win; see
    /// `BENCH_fleet_scaling.json` for the measured crossover.
    #[deprecated(note = "use `with_exec_mode(ExecMode::…)` instead")]
    #[must_use]
    pub fn with_parallel_stepping(self, parallel: bool) -> Self {
        self.with_exec_mode(if parallel {
            ExecMode::Sharded { workers: None }
        } else {
            ExecMode::Sequential
        })
    }

    /// Worker threads held by the persistent decode-stepping pool (0
    /// until a multi-worker sharded batch has run). Exposed so tests can
    /// assert the pool is reused across `serve()` calls rather than
    /// leaked.
    pub fn worker_pool_size(&self) -> usize {
        self.pool.as_ref().map_or(0, ShardedExecutor::workers)
    }

    /// Schedules elastic-scaling (drain/join) events on either pool.
    ///
    /// # Panics
    ///
    /// Panics if an event names a replica outside its pool.
    pub fn with_events(mut self, mut events: Vec<DisaggScalingEvent>) -> Self {
        for e in &events {
            let len = match e.pool {
                Pool::Prefill => self.prefill.replicas.len(),
                Pool::Decode => self.decode.len(),
            };
            assert!(e.replica < len, "event names no replica in its pool");
        }
        events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        self.events = events;
        self
    }

    /// The slowest decode replica's baseline decode latency (workloads
    /// should resolve baseline-relative SLOs against this).
    pub fn decode_max_baseline_ms(&self) -> f64 {
        self.decode
            .iter()
            .map(Replica::baseline_ms)
            .fold(0.0, f64::max)
    }

    /// Read-only view of the prefill pool.
    pub fn prefill_replicas(&self) -> &[PrefillReplica] {
        &self.prefill.replicas
    }

    /// Read-only view of the decode pool.
    pub fn decode_replicas(&self) -> &[Replica] {
        &self.decode
    }

    /// Indices of decode replicas accepting migrations; the whole pool
    /// when everything is draining (degrade, don't drop).
    fn decode_eligible(&self) -> Vec<usize> {
        cluster::accepting_or_all(self.decode.iter().map(|r| r.accepting && !r.down))
    }

    /// Tries to land every parked migration on decode replica `id` (see
    /// [`drain_landing_on`]).
    fn drain_landing(&mut self, id: usize) {
        drain_landing_on(&mut self.decode[id], &mut self.landing[id]);
    }

    /// KV-migration telemetry accumulated so far (for inspection after a
    /// session run recovers the cluster via `ServeSession::into_inner`).
    pub fn transfer_stats(&self) -> TransferStats {
        self.transfers.stats
    }

    /// Serves `workload` to completion across both pools.
    ///
    /// # Deprecated
    ///
    /// This is now a thin shim over the unified front door — a
    /// [`ServeSession`] driving this cluster as a [`Deployment`] — which
    /// additionally supports mid-run submission and scaling. Output is
    /// equivalent (see `tests/output_equivalence.rs`). Migrate by
    /// wrapping the same cluster; scheduled
    /// [`DisaggCluster::with_events`] scaling becomes `scale_at` calls on
    /// the session's timeline (addressing either pool):
    ///
    /// ```
    /// use disagg::{DisaggCluster, DisaggScalingEvent};
    /// use serving::{ReplicaAddr, RunError, RunOptions, RunReport, ServeSession};
    /// use workload::Workload;
    ///
    /// // before: cluster.with_events(events).run(workload, options)?
    /// fn migrated(
    ///     cluster: DisaggCluster,
    ///     events: Vec<DisaggScalingEvent>,
    ///     workload: &Workload,
    ///     options: RunOptions,
    /// ) -> Result<RunReport, RunError> {
    ///     let mut session = ServeSession::with_options(cluster, options);
    ///     for e in events {
    ///         let addr = ReplicaAddr { pool: e.pool, index: e.replica };
    ///         session.scale_at(e.at_ms, addr, e.action);
    ///     }
    ///     session.serve(workload)
    /// }
    /// ```
    #[deprecated(note = "drive a `serving::ServeSession` over this `DisaggCluster` instead")]
    pub fn run(
        mut self,
        workload: &Workload,
        options: RunOptions,
    ) -> Result<DisaggRunResult, RunError> {
        let events = std::mem::take(&mut self.events);
        let mut session = ServeSession::with_options(self, options).admission_control(false);
        for e in events {
            session.scale_at(
                e.at_ms,
                ReplicaAddr {
                    pool: e.pool,
                    index: e.replica,
                },
                e.action,
            );
        }
        let report = session.serve(workload)?;
        let cluster = session.into_inner();
        let per_prefill: Vec<PrefillStats> = report
            .prefill_units()
            .map(|u| PrefillStats {
                replica: u.replica.index,
                routed: u.routed,
                prefilled_requests: u.prefilled_requests,
                prefill_tokens: u.prefill_tokens,
                iterations: u.result.iterations,
                end_ms: u.result.end_ms,
            })
            .collect();
        let per_decode: Vec<ReplicaResult> = report
            .units
            .into_iter()
            .filter(|u| u.replica.pool == Pool::Decode)
            .map(|u| ReplicaResult {
                replica: u.replica.index,
                routed: u.routed,
                result: u.result,
            })
            .collect();
        Ok(DisaggRunResult {
            decode_router: report.deployment,
            records: report.records,
            per_prefill,
            per_decode,
            transfers: cluster.transfers.stats,
            end_ms: report.end_ms,
            iterations: report.iterations,
        })
    }

    /// The earliest prefill replica ready to iterate. Down replicas are
    /// frozen, and a dark KV link freezes the whole pool (its output has
    /// nowhere to go) until the session clears the outage.
    fn prefill_stepper(&self) -> Option<(f64, usize)> {
        if self.link_down {
            return None;
        }
        self.prefill
            .replicas
            .iter()
            .filter(|r| r.has_work() && !r.down)
            .min_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms).then(a.id.cmp(&b.id)))
            .map(|r| (r.clock_ms, r.id))
    }

    /// The earliest decode replica ready to iterate (down replicas are
    /// frozen until the session clears their crash).
    fn decode_stepper(&self) -> Option<(f64, usize)> {
        self.decode
            .iter()
            .filter(|r| r.has_work() && !r.down)
            .min_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms).then(a.id.cmp(&b.id)))
            .map(|r| (r.clock_ms, r.id))
    }

    /// Rolls one aborted transfer out of its destination's inbound load
    /// view and lifecycle memory, returning the lost request's spec.
    fn roll_back_aborted(&mut self, transfer: KvTransfer) -> RequestSpec {
        let to = transfer.to_decode;
        let inbound = &mut self.decode[to].inbound;
        inbound.requests = inbound.requests.saturating_sub(1);
        inbound.decode_tokens = inbound
            .decode_tokens
            .saturating_sub(u64::from(transfer.request.remaining()));
        let slo = transfer.request.spec.tpot_slo_ms;
        if let Some(k) = inbound.tpot_slos.iter().position(|&s| s == slo) {
            inbound.tpot_slos.swap_remove(k);
        }
        self.decode[to].forget(transfer.request.spec.id);
        self.prefill_started.remove(&transfer.request.spec.id);
        transfer.request.spec
    }
}

/// One decode replica's share of a sharded stepping batch: exclusive
/// access to the replica and its landing queue plus a private event
/// buffer and result slot, merged in replica-index order once the batch
/// completes.
struct DecodeTask<'a> {
    id: usize,
    replica: &'a mut Replica,
    landing: &'a mut VecDeque<LiveRequest>,
    events: Vec<DeploymentEvent>,
    result: Result<(), RunError>,
}

impl Deployment for DisaggCluster {
    /// The decode-side routing policy's name (the label legacy disagg
    /// results carried).
    fn name(&self) -> String {
        self.dispatcher.decode_router_name()
    }

    fn max_baseline_ms(&self) -> f64 {
        self.decode_max_baseline_ms()
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.prefill
            .replicas
            .iter()
            .map(|r| r.core.kv_capacity_tokens())
            .chain(
                self.decode
                    .iter()
                    .map(|r| r.engine.core().kv_capacity_tokens()),
            )
            .min()
            .expect("both pools are non-empty")
    }

    /// The longest cached prefix across the *prefill* pool (where prompts
    /// are processed, and where the dispatcher can steer the request).
    fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u32 {
        if self
            .prefill
            .replicas
            .iter()
            .all(|r| r.core.prefix.is_none())
        {
            return 0;
        }
        let prompt = spec.prompt_tokens();
        self.prefill
            .replicas
            .iter()
            .map(|r| r.cached_prefix_tokens(spec, &prompt))
            .max()
            .unwrap_or(0)
    }

    fn submit(&mut self, spec: RequestSpec, now_ms: f64) {
        let eligible = self.prefill.eligible();
        let choice =
            self.dispatcher
                .route_prefill(&spec, now_ms, &self.prefill.replicas, &eligible);
        let choice = if eligible.contains(&choice) {
            choice
        } else {
            debug_assert!(false, "dispatcher returned ineligible prefill {choice}");
            eligible[0]
        };
        if self.tracer.enabled() {
            self.tracer.record(
                now_ms,
                EventKind::RouteDecision {
                    id: spec.id,
                    router: "prefill-tier".to_string(),
                    replica: TraceReplica::prefill(choice),
                    modeled_load_ms: self.prefill.replicas[choice].drain_estimate_ms(now_ms),
                },
            );
        }
        let r = &mut self.prefill.replicas[choice];
        r.core.on_arrival(spec);
        r.clock_ms = r.clock_ms.max(now_ms);
        r.routed += 1;
    }

    fn next_event_ms(&self) -> Option<f64> {
        let t_xfer = self.transfers.next_arrival_ms().unwrap_or(f64::INFINITY);
        let t_pre = self.prefill_stepper().map_or(f64::INFINITY, |(t, _)| t);
        let t_dec = self.decode_stepper().map_or(f64::INFINITY, |(t, _)| t);
        let t = t_xfer.min(t_pre).min(t_dec);
        (!t.is_infinite()).then_some(t)
    }

    /// Internal event ordering at equal timestamps: KV-transfer arrivals
    /// first (migrated requests join decode batches before the batch
    /// steps), then the earliest-clock replica iterates (prefill before
    /// decode on exact clock ties) — the same order the legacy driver
    /// used.
    fn step(&mut self, options: &RunOptions) -> Result<DeploymentStep, RunError> {
        let t_xfer = self.transfers.next_arrival_ms().unwrap_or(f64::INFINITY);
        let pre_stepper = self.prefill_stepper();
        let t_pre = pre_stepper.map_or(f64::INFINITY, |(t, _)| t);
        let dec_stepper = self.decode_stepper();
        let t_dec = dec_stepper.map_or(f64::INFINITY, |(t, _)| t);
        let mut events = Vec::new();

        if t_xfer <= t_pre.min(t_dec) {
            // Landed transfers are bookkeeping, not an engine iteration:
            // no latency for the progress guard.
            for transfer in self.transfers.pop_arrivals(t_xfer) {
                let id = transfer.to_decode;
                let r = &mut self.decode[id];
                // Wire time lands on the destination's latency breakdown
                // (breakdowns are run telemetry, not per-request records,
                // so record output stays identical with tracing off).
                r.engine.core_mut().breakdown.kv_transfer_ms +=
                    (transfer.arrive_ms - transfer.start_ms).max(0.0);
                r.clock_ms = r.clock_ms.max(transfer.arrive_ms);
                r.routed += 1;
                self.landing[id].push_back(transfer.request);
                self.drain_landing(id);
            }
            return Ok(DeploymentStep {
                events,
                latency_ms: None,
                replica: None,
            });
        }

        if t_pre <= t_dec {
            // Prefill iteration; completed prompts start migrating.
            let (_, id) = pre_stepper.expect("t_pre was finite");
            let before = self.prefill.replicas[id].clock_ms;
            let tokens_before = self.prefill.replicas[id].prefill_tokens;
            let done = self.prefill.replicas[id].step()?;
            let now = self.prefill.replicas[id].clock_ms;
            if self.tracer.enabled() {
                let r = &self.prefill.replicas[id];
                let replica = TraceReplica::prefill(id);
                for req in r
                    .core
                    .running
                    .iter()
                    .map(|q| q.spec.id)
                    .chain(done.iter().map(|q| q.spec.id))
                {
                    if self.prefill_started.insert(req) {
                        self.tracer
                            .record(now, EventKind::PrefillStart { id: req, replica });
                    }
                }
                let tokens = r.prefill_tokens - tokens_before;
                if tokens > 0 {
                    self.tracer.record(
                        now,
                        EventKind::PrefillChunk {
                            replica,
                            requests: r.core.running.len() + done.len(),
                            tokens,
                            latency_ms: now - before,
                        },
                    );
                }
            }
            if self.prefill.replicas[id].iterations > options.max_iterations {
                return Err(RunError::iteration_cap().at(Pool::Prefill, id));
            }
            if now > options.max_sim_ms {
                return Err(RunError::time_cap().at(Pool::Prefill, id));
            }
            let eligible = self.decode_eligible();
            for req in done {
                // A prompt admitted and fully prefilled within one
                // iteration never appeared in a running-batch scan:
                // announce its admission at handoff.
                self.prefill_tracker
                    .admit(req.spec.id, ReplicaAddr::prefill(id), now, &mut events);
                // Route at the transfer's estimated arrival (wire time
                // is destination-independent; ingress queueing is not
                // foreseeable before a destination is chosen), so the
                // remaining-TPOT shading charges the migration delay.
                let est_arrival = now + self.transfers.wire_ms(req.context_len());
                let to = self
                    .dispatcher
                    .route_decode(&req, est_arrival, &self.decode, &eligible);
                // Count the migration against the destination's load
                // view immediately, so the next handoff in this burst
                // (and any until the transfer lands) sees it instead
                // of dogpiling one replica's ingress link.
                let inbound = &mut self.decode[to].inbound;
                inbound.requests += 1;
                inbound.decode_tokens += u64::from(req.remaining());
                inbound.tpot_slos.push(req.spec.tpot_slo_ms);
                // Admission state travels with the request: the decode
                // tracker must not re-announce it, and the prefill
                // tracker can drop it (bounded sets).
                self.decode[to].mark_admitted(req.spec.id);
                self.prefill_tracker.forget(req.spec.id);
                let req_id = req.spec.id;
                let bytes = u64::from(req.context_len()) * self.transfers.kv_bytes_per_token();
                let arrive_ms = self.transfers.enqueue(req, id, to, now);
                if self.tracer.enabled() {
                    self.prefill_started.remove(&req_id);
                    // The ingress link serializes per destination, so the
                    // transfer may start occupying the wire after `now`.
                    let start_ms = arrive_ms - self.transfers.wire_ms_for_bytes(bytes);
                    self.tracer.record(
                        now,
                        EventKind::KvTransfer {
                            id: req_id,
                            from_prefill: id,
                            to_decode: to,
                            bytes,
                            start_ms,
                            arrive_ms,
                        },
                    );
                }
            }
            self.prefill_tracker.scan_core(
                &self.prefill.replicas[id].core,
                ReplicaAddr::prefill(id),
                now,
                &mut self.prefill_finished_seen[id],
                &mut events,
            );
            return Ok(DeploymentStep {
                events,
                latency_ms: Some(now - before),
                replica: Some(ReplicaAddr::prefill(id)),
            });
        }

        // Decode iteration. Migrated requests sitting in the batch are
        // stamped *before* the step, at the iteration's start clock —
        // the colocated semantics of `decode_start_ms` ("time the first
        // decode iteration started"), which engines whose own stamping
        // assumes a local prefill pass cannot provide for them. The
        // shared [`decode_step_checked`] body keeps this path identical
        // to parallel batch stepping.
        let (_, id) = dec_stepper.expect("t_dec was finite");
        let latency_ms = decode_step_checked(
            &mut self.decode[id],
            &mut self.landing[id],
            id,
            options,
            &mut events,
        )?;
        Ok(DeploymentStep {
            events,
            latency_ms: Some(latency_ms),
            replica: Some(ReplicaAddr::serving(id)),
        })
    }

    /// Sharded decode-pool batch: decode replicas interact with the rest
    /// of the system only at KV-transfer landings and prefill routing
    /// reads, so between now and the earliest of (external horizon, next
    /// transfer arrival, next prefill iteration) each due decode replica
    /// advances independently — distributed over the persistent
    /// [`ShardedExecutor`] (or inline on the caller when one worker
    /// suffices) — and results merge in replica-index order.
    /// Prefill/transfer events fall back to the sequential
    /// [`Deployment::step`].
    fn step_until(
        &mut self,
        horizon_ms: f64,
        options: &RunOptions,
    ) -> Result<DeploymentStep, RunError> {
        let mode = self.exec_override.unwrap_or(options.exec);
        let t_xfer = self.transfers.next_arrival_ms().unwrap_or(f64::INFINITY);
        let t_pre = self.prefill_stepper().map_or(f64::INFINITY, |(t, _)| t);
        let decode_horizon = horizon_ms.min(t_xfer).min(t_pre);
        let due = self
            .decode
            .iter()
            .filter(|r| r.has_work() && !r.down && r.clock_ms < decode_horizon)
            .count();
        if mode == ExecMode::Sequential || due <= 1 {
            return self.step(options);
        }
        let mut tasks: Vec<Mutex<DecodeTask<'_>>> = self
            .decode
            .iter_mut()
            .zip(self.landing.iter_mut())
            .enumerate()
            .filter(|(_, (r, _))| r.has_work() && !r.down && r.clock_ms < decode_horizon)
            .map(|(id, (replica, landing))| {
                Mutex::new(DecodeTask {
                    id,
                    replica,
                    landing,
                    events: Vec::new(),
                    result: Ok(()),
                })
            })
            .collect();
        let run_one = |i: usize| {
            // Uncontended: shard claiming hands each index to exactly one
            // worker; the mutex only makes that exclusivity checkable.
            let mut task = tasks[i].lock().expect("decode task");
            let task = &mut *task;
            task.result = decode_run_until(
                task.replica,
                task.landing,
                task.id,
                decode_horizon,
                options,
                &mut task.events,
            );
        };
        let workers = mode.effective_workers();
        if workers <= 1 {
            for i in 0..tasks.len() {
                run_one(i);
            }
        } else {
            if self.pool.as_ref().is_some_and(|p| p.workers() != workers) {
                self.pool = None;
            }
            self.pool
                .get_or_insert_with(|| ShardedExecutor::new(workers))
                .run(tasks.len(), run_one);
        }
        let mut events = Vec::new();
        for task in tasks.drain(..) {
            let task = task.into_inner().expect("decode task");
            task.result?;
            events.extend(task.events);
        }
        Ok(DeploymentStep {
            events,
            latency_ms: None,
            replica: None,
        })
    }

    fn set_accepting(&mut self, replica: ReplicaAddr, accepting: bool, now_ms: f64) {
        match replica.pool {
            Pool::Prefill => {
                let r = &mut self.prefill.replicas[replica.index];
                r.accepting = accepting;
                r.clock_ms = r.clock_ms.max(now_ms);
            }
            Pool::Decode => {
                let r = &mut self.decode[replica.index];
                r.accepting = accepting;
                r.clock_ms = r.clock_ms.max(now_ms);
            }
        }
    }

    fn inject_fault(&mut self, fault: &FaultKind, now_ms: f64) -> Vec<RequestSpec> {
        match fault {
            FaultKind::ReplicaCrash { replica, .. } => match replica.pool {
                Pool::Decode if replica.index < self.decode.len() => {
                    let i = replica.index;
                    let mut lost = self.decode[i].crash(now_ms);
                    // Migrations parked on its landing queue lose their KV
                    // with the rest of device memory…
                    for req in std::mem::take(&mut self.landing[i]) {
                        self.decode[i].forget(req.spec.id);
                        lost.push(req.spec);
                    }
                    // …and transfers streaming toward it abort mid-wire.
                    for transfer in self.transfers.abort_to(i) {
                        lost.push(self.roll_back_aborted(transfer));
                    }
                    // Every inbound unit was parked or in flight: none left.
                    self.decode[i].inbound = InboundWork::default();
                    lost
                }
                Pool::Prefill if replica.index < self.prefill.replicas.len() => {
                    let lost = self.prefill.replicas[replica.index].crash(now_ms);
                    for spec in &lost {
                        self.prefill_tracker.forget(spec.id);
                        self.prefill_started.remove(&spec.id);
                    }
                    lost
                }
                _ => Vec::new(),
            },
            FaultKind::SlowReplica {
                replica, factor, ..
            } => {
                match replica.pool {
                    Pool::Decode if replica.index < self.decode.len() => {
                        self.decode[replica.index].latency_factor = *factor;
                    }
                    Pool::Prefill if replica.index < self.prefill.replicas.len() => {
                        self.prefill.replicas[replica.index].latency_factor = *factor;
                    }
                    _ => {}
                }
                Vec::new()
            }
            FaultKind::LinkDegrade { factor, .. } => {
                self.transfers.set_wire_factor(*factor);
                Vec::new()
            }
            FaultKind::LinkOutage { .. } => {
                self.link_down = true;
                self.transfers
                    .abort_all()
                    .into_iter()
                    .map(|t| self.roll_back_aborted(t))
                    .collect()
            }
        }
    }

    fn clear_fault(&mut self, fault: &FaultKind, now_ms: f64) {
        match fault {
            FaultKind::ReplicaCrash { replica, .. } => match replica.pool {
                Pool::Decode if replica.index < self.decode.len() => {
                    self.decode[replica.index].recover(now_ms);
                }
                Pool::Prefill if replica.index < self.prefill.replicas.len() => {
                    self.prefill.replicas[replica.index].recover(now_ms);
                }
                _ => {}
            },
            FaultKind::SlowReplica { replica, .. } => match replica.pool {
                Pool::Decode if replica.index < self.decode.len() => {
                    self.decode[replica.index].latency_factor = 1.0;
                }
                Pool::Prefill if replica.index < self.prefill.replicas.len() => {
                    self.prefill.replicas[replica.index].latency_factor = 1.0;
                }
                _ => {}
            },
            FaultKind::LinkDegrade { .. } => self.transfers.set_wire_factor(1.0),
            FaultKind::LinkOutage { .. } => {
                self.link_down = false;
                // The outage backpressured the prefill pool: the stall is
                // wall-clock time its replicas lived through.
                for r in &mut self.prefill.replicas {
                    r.clock_ms = r.clock_ms.max(now_ms);
                }
            }
        }
    }

    fn set_degraded(&mut self, degraded: bool) {
        // Speculation happens on the decode pool only.
        for r in &mut self.decode {
            r.engine.core_mut().degraded = degraded;
        }
    }

    fn iterations(&self) -> u64 {
        self.prefill
            .replicas
            .iter()
            .map(|r| r.iterations)
            .chain(self.decode.iter().map(|r| r.engine.core().iterations))
            .sum()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        for r in &mut self.decode {
            r.set_tracer(tracer.clone());
        }
        self.dispatcher.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Both pools' gauges: queue depth and in-flight sum across every
    /// replica (prefill and decode), KV occupancy reports the fullest
    /// replica, and the cache hit rate pools the per-core counters.
    fn gauges(&self) -> GaugeSample {
        let mut sample = GaugeSample::default();
        let mut hot = HotLoopStats::default();
        let cores = self
            .prefill
            .replicas
            .iter()
            .map(|r| &r.core)
            .chain(self.decode.iter().map(|r| r.engine.core()));
        for core in cores {
            let g = core_gauges(core);
            sample.queue_depth += g.queue_depth;
            sample.in_flight += g.in_flight;
            sample.kv_occupancy_pct = sample.kv_occupancy_pct.max(g.kv_occupancy_pct);
            hot.merge(&core.hotloop);
        }
        sample.cache_hit_rate_pct = hot.prefix_hit_rate_pct();
        sample
    }

    fn clock_ms(&self) -> f64 {
        self.prefill
            .replicas
            .iter()
            .map(|r| r.clock_ms)
            .chain(self.decode.iter().map(|r| r.clock_ms))
            .fold(0.0, f64::max)
    }

    fn drain(&mut self) -> Result<Vec<UnitStats>, RunError> {
        // A migration still parked once everything else drained can never
        // be admitted (its context exceeds the replica's whole pool):
        // error out cleanly, as the colocated driver does for oversized
        // requests.
        if let Some((id, parked)) = self
            .landing
            .iter()
            .enumerate()
            .find(|(_, parked)| !parked.is_empty())
        {
            let request = parked.front().expect("non-empty").spec.id;
            return Err(RunError::kv_capacity()
                .at(Pool::Decode, id)
                .for_request(request));
        }
        let mut units: Vec<UnitStats> = self
            .prefill
            .replicas
            .iter()
            .map(|r| UnitStats {
                replica: ReplicaAddr::prefill(r.id),
                routed: r.routed,
                result: RunResult {
                    engine: "prefill".into(),
                    records: Vec::new(),
                    breakdown: r.core.breakdown,
                    hotloop: r.core.hotloop,
                    end_ms: r.clock_ms,
                    iterations: r.iterations,
                    mean_accepted_per_verify: 0.0,
                },
                prefilled_requests: r.prefilled_requests,
                prefill_tokens: r.prefill_tokens,
            })
            .collect();
        units.extend(self.decode.iter_mut().map(|r| UnitStats {
            replica: ReplicaAddr::serving(r.id),
            routed: r.routed,
            result: r.finalize(),
            prefilled_requests: 0,
            prefill_tokens: 0,
        }));
        Ok(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Dispatcher;
    use cluster::RouterKind;
    use serving::{RunErrorKind, RunReport, SystemConfig};
    use workload::{Category, RequestSpec};

    fn tiny_workload(n: u64, gap_ms: f64) -> Workload {
        let requests = (0..n)
            .map(|id| {
                let category = Category::ALL[(id % 3) as usize];
                RequestSpec {
                    id,
                    category,
                    arrival_ms: id as f64 * gap_ms,
                    prompt_len: 16 + (id as u32 % 5) * 40,
                    output_len: 6,
                    tpot_slo_ms: 50.0,
                    ttft_slo_ms: category.ttft_slo().resolve(25.0),
                    stream_seed: id ^ 0xD15A,
                    prefix: None,
                }
            })
            .collect();
        Workload {
            requests,
            description: "tiny disagg".into(),
        }
    }

    fn cluster(n_prefill: usize, n_decode: usize) -> DisaggCluster {
        let prefill = PrefillPool::new(vec![SystemConfig::llama70b(3); n_prefill]);
        let decode: Vec<Box<dyn ServingEngine>> = (0..n_decode)
            .map(|_| {
                Box::new(adaserve_core::AdaServeEngine::new(SystemConfig::llama70b(
                    3,
                ))) as Box<dyn ServingEngine>
            })
            .collect();
        DisaggCluster::new(
            prefill,
            decode,
            Dispatcher::new(RouterKind::SloAware.build()),
            KvLink::new(300.0, 0.05),
        )
    }

    /// Front-door drive with a scaling timeline; returns the report and
    /// the recovered cluster (for transfer telemetry).
    fn serve_disagg(
        cluster: DisaggCluster,
        events: Vec<DisaggScalingEvent>,
        workload: &Workload,
        options: RunOptions,
    ) -> Result<(RunReport, DisaggCluster), RunError> {
        let mut session = ServeSession::with_options(cluster, options);
        for e in events {
            session.scale_at(
                e.at_ms,
                ReplicaAddr {
                    pool: e.pool,
                    index: e.replica,
                },
                e.action,
            );
        }
        let report = session.serve(workload)?;
        Ok((report, session.into_inner()))
    }

    fn decode_records(report: &RunReport, index: usize) -> usize {
        report
            .serving_units()
            .nth(index)
            .expect("decode unit exists")
            .result
            .records
            .len()
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let wl = tiny_workload(12, 8.0);
        let (result, recovered) =
            serve_disagg(cluster(1, 2), Vec::new(), &wl, RunOptions::default()).expect("run");
        assert_eq!(result.records.len(), 12);
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "no duplicates across migration");
        assert_eq!(
            recovered.transfer_stats().transfers,
            12,
            "every request migrated"
        );
        for r in &result.records {
            assert_eq!(r.output_tokens, 6, "no tokens lost in migration");
        }
    }

    #[test]
    fn ttft_includes_prefill_and_transfer() {
        let wl = tiny_workload(4, 50.0);
        let (result, _) =
            serve_disagg(cluster(1, 1), Vec::new(), &wl, RunOptions::default()).unwrap();
        for r in &result.records {
            assert!(
                r.decode_start_ms > r.arrival_ms,
                "decode starts after arrival"
            );
            assert!(r.ttft_ms() > 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let wl = tiny_workload(10, 6.0);
        let (a, ca) = serve_disagg(cluster(2, 2), Vec::new(), &wl, RunOptions::default()).unwrap();
        let (b, cb) = serve_disagg(cluster(2, 2), Vec::new(), &wl, RunOptions::default()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.end_ms, b.end_ms);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(ca.transfer_stats(), cb.transfer_stats());
    }

    #[test]
    fn drained_prefill_replica_takes_no_arrivals() {
        let wl = tiny_workload(6, 30.0);
        let (result, _) = serve_disagg(
            cluster(2, 1),
            vec![DisaggScalingEvent {
                at_ms: -1.0,
                pool: Pool::Prefill,
                replica: 1,
                action: ScalingAction::Drain,
            }],
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let prefill: Vec<&UnitStats> = result.prefill_units().collect();
        assert_eq!(prefill[0].routed, 6);
        assert_eq!(prefill[1].routed, 0);
        assert_eq!(result.records.len(), 6, "drain loses nothing");
    }

    #[test]
    fn drained_decode_replica_receives_no_migrations() {
        let wl = tiny_workload(6, 30.0);
        let (result, _) = serve_disagg(
            cluster(1, 2),
            vec![DisaggScalingEvent {
                at_ms: -1.0,
                pool: Pool::Decode,
                replica: 0,
                action: ScalingAction::Drain,
            }],
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(decode_records(&result, 0), 0);
        assert_eq!(decode_records(&result, 1), 6);
    }

    #[test]
    fn empty_workload_is_a_no_op() {
        let wl = Workload {
            requests: Vec::new(),
            description: "empty".into(),
        };
        let (result, recovered) =
            serve_disagg(cluster(1, 1), Vec::new(), &wl, RunOptions::default()).unwrap();
        assert!(result.records.is_empty());
        assert_eq!(result.end_ms, 0.0);
        assert_eq!(recovered.transfer_stats().transfers, 0);
    }

    #[test]
    fn burst_handoffs_spread_across_decode_replicas() {
        // Six same-instant short prompts finish in one prefill iteration,
        // so the dispatcher routes six migrations back to back with no
        // intervening decode progress. The inbound-work accounting must
        // make each handoff visible to the next: a load-aware router then
        // spreads the burst instead of dogpiling one ingress link.
        let requests = (0..6)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: 0.0,
                prompt_len: 24,
                output_len: 8,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_200.0,
                stream_seed: id,
                prefix: None,
            })
            .collect();
        let wl = Workload {
            requests,
            description: "burst".into(),
        };
        let (result, _) =
            serve_disagg(cluster(1, 2), Vec::new(), &wl, RunOptions::default()).unwrap();
        assert_eq!(result.records.len(), 6);
        let shares: Vec<u64> = result.serving_units().map(|u| u.routed).collect();
        for (i, &share) in shares.iter().enumerate() {
            assert!(
                share > 0,
                "decode-{i} received no share of the burst: {shares:?}"
            );
        }
    }

    #[test]
    fn oversized_migration_errors_cleanly() {
        // A prompt that fits the prefill pool but exceeds a decode
        // replica's entire KV pool can never land: the run must return an
        // error, not hang or panic (mirrors the colocated driver's
        // oversized-request behavior). The error names the decode replica
        // and the parked request.
        let wl = Workload {
            requests: vec![RequestSpec {
                id: 0,
                category: Category::Summarization,
                arrival_ms: 0.0,
                prompt_len: 500,
                output_len: 4,
                tpot_slo_ms: 150.0,
                ttft_slo_ms: 8_000.0,
                stream_seed: 1,
                prefix: None,
            }],
            description: "oversized".into(),
        };
        let prefill = PrefillPool::new(vec![SystemConfig::llama70b(3)]);
        let mut engine = adaserve_core::AdaServeEngine::new(SystemConfig::llama70b(3));
        // 4 blocks x 16 tokens = 64-token decode pool vs a 500-token context.
        engine.core_mut().blocks = serving::BlockManager::new(4, 16);
        let disagg = DisaggCluster::new(
            prefill,
            vec![Box::new(engine)],
            Dispatcher::new(RouterKind::SloAware.build()),
            KvLink::new(300.0, 0.05),
        );
        let err = ServeSession::with_options(disagg, RunOptions::default())
            .admission_control(false)
            .serve(&wl)
            .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::KvCapacity);
        assert_eq!(err.site().pool, Some(Pool::Decode));
        assert_eq!(err.site().replica, Some(0));
        assert_eq!(err.site().request, Some(0));
    }

    #[test]
    fn oversized_prompt_is_rejected_by_admission_control() {
        // Same setup, but with the session's front-door admission control
        // on (the default): the request is rejected up front instead of
        // erroring out the whole run.
        let wl = Workload {
            requests: vec![RequestSpec {
                id: 7,
                category: Category::Summarization,
                arrival_ms: 0.0,
                prompt_len: 500,
                output_len: 4,
                tpot_slo_ms: 150.0,
                ttft_slo_ms: 8_000.0,
                stream_seed: 1,
                prefix: None,
            }],
            description: "oversized".into(),
        };
        let prefill = PrefillPool::new(vec![SystemConfig::llama70b(3)]);
        let mut engine = adaserve_core::AdaServeEngine::new(SystemConfig::llama70b(3));
        engine.core_mut().blocks = serving::BlockManager::new(4, 16);
        let disagg = DisaggCluster::new(
            prefill,
            vec![Box::new(engine)],
            Dispatcher::new(RouterKind::SloAware.build()),
            KvLink::new(300.0, 0.05),
        );
        let report = ServeSession::new(disagg).serve(&wl).expect("run completes");
        assert!(report.records.is_empty());
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, 7);
    }

    #[test]
    fn migrated_requests_are_stamped_at_decode_iteration_start() {
        // decode_start_ms must be the *start* of the first decode
        // iteration (colocated semantics), so completion never coincides
        // with it and single-iteration requests cannot report zero TPOT.
        let wl = tiny_workload(5, 20.0);
        let (result, _) =
            serve_disagg(cluster(1, 1), Vec::new(), &wl, RunOptions::default()).unwrap();
        for r in &result.records {
            assert!(
                r.completion_ms > r.decode_start_ms,
                "request {}: completion {} <= decode start {}",
                r.id,
                r.completion_ms,
                r.decode_start_ms
            );
            assert!(r.avg_tpot_ms() > 0.0, "request {} reports zero TPOT", r.id);
        }
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let wl = tiny_workload(6, 1.0);
        let err = serve_disagg(
            cluster(1, 1),
            Vec::new(),
            &wl,
            RunOptions {
                max_sim_ms: f64::MAX,
                max_iterations: 1,
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::IterationCap);
        assert!(err.site().pool.is_some(), "cap names its pool");
    }
}
