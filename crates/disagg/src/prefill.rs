//! The prefill side of a disaggregated deployment.
//!
//! A [`PrefillReplica`] runs chunked prefill *only*: it admits waiting
//! prompts in TTFT-tier order, fills a per-iteration token budget with
//! chunks (tightest first-token deadline first), and hands every fully
//! prefilled request back to the driver for KV migration. It never decodes
//! and never stamps decode-start timestamps — in a disaggregated
//! deployment the first decode step happens on the decode pool, after the
//! KV transfer lands.

use roofline::{ForwardPass, SeqWork};
use serving::{EngineCore, LiveRequest, Phase, Pool, RunError, StallGuard, SystemConfig};

/// Default per-iteration prefill token budget (matches the full-prompt
/// chunk the colocated AdaServe engine uses for prefill-only passes).
pub const DEFAULT_CHUNK_BUDGET: u32 = 2048;

/// One prefill-only replica: chunked prefill over an [`EngineCore`],
/// advancing on its own local clock under the disagg driver.
#[derive(Debug)]
pub struct PrefillReplica {
    /// Stable index within the prefill pool.
    pub id: usize,
    /// Queueing/memory machinery (waiting queue, running batch, KV pool).
    pub core: EngineCore,
    /// Local clock: when this replica's next iteration may start.
    pub clock_ms: f64,
    /// Whether the dispatcher may place new arrivals here (drain/join).
    pub accepting: bool,
    /// Whether the replica is crashed (fault injection). A down replica
    /// holds no requests — the crash evicted them — and is excluded from
    /// stepping and dispatch until the session clears the fault.
    pub down: bool,
    /// Iteration-latency multiplier for an injected transient slowdown
    /// (1.0 when healthy — an exact IEEE identity, so fault-free runs
    /// stay bit-identical).
    pub latency_factor: f64,
    /// Arrivals routed to this replica so far.
    pub routed: u64,
    /// Requests whose prefill completed here (handed to migration).
    pub prefilled_requests: u64,
    /// Prompt tokens prefilled here.
    pub prefill_tokens: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Per-iteration prefill token budget.
    chunk_budget: u32,
    /// Modelled cost of one prefill token (for load estimates), ms.
    per_token_ms: f64,
    guard: StallGuard,
}

impl PrefillReplica {
    /// Creates a replica with the default chunk budget.
    pub fn new(id: usize, config: SystemConfig) -> Self {
        Self::with_chunk_budget(id, config, DEFAULT_CHUNK_BUDGET)
    }

    /// Creates a replica with an explicit per-iteration token budget.
    pub fn with_chunk_budget(id: usize, config: SystemConfig, chunk_budget: u32) -> Self {
        assert!(chunk_budget >= 1);
        let probe = ForwardPass::new(vec![SeqWork::prefill(512, 0)]);
        let per_token_ms = config.testbed.target.forward_latency_ms(&probe, false) / 512.0;
        Self {
            id,
            core: EngineCore::new(config),
            clock_ms: 0.0,
            accepting: true,
            down: false,
            latency_factor: 1.0,
            routed: 0,
            prefilled_requests: 0,
            prefill_tokens: 0,
            iterations: 0,
            chunk_budget,
            per_token_ms,
            guard: StallGuard::default(),
        }
    }

    /// Whether the replica has queued or in-flight prefill work.
    pub fn has_work(&self) -> bool {
        self.core.has_work()
    }

    /// Prompt tokens still to prefill across waiting and running requests.
    pub fn pending_prefill_tokens(&self) -> u64 {
        self.core
            .waiting
            .iter()
            .chain(self.core.running.iter())
            .map(|r| u64::from(r.prefill_remaining()))
            .sum()
    }

    /// The longest block-aligned prefix of `spec`'s prompt resident in
    /// this replica's engine-level prefix cache, in tokens (0 without a
    /// cache). `prompt` is the pre-derived prompt stream — the dispatcher
    /// derives it once per arrival and probes every replica.
    pub fn cached_prefix_tokens(
        &self,
        spec: &workload::RequestSpec,
        prompt: &[simllm::TokenId],
    ) -> u32 {
        self.core
            .prefix
            .as_ref()
            .map_or(0, |c| c.peek(prompt, spec.prompt_len.saturating_sub(1)))
    }

    /// Outstanding requests whose TTFT SLO is at most `tight_ttft_ms`.
    pub fn tight_outstanding(&self, tight_ttft_ms: f64) -> usize {
        self.core
            .waiting
            .iter()
            .chain(self.core.running.iter())
            .filter(|r| r.spec.ttft_slo_ms <= tight_ttft_ms)
            .count()
    }

    /// Modelled time to drain the pending prefill queue as seen from
    /// global time `now_ms` (queued tokens at the modelled per-token
    /// prefill cost, plus any head start of the local clock).
    pub fn drain_estimate_ms(&self, now_ms: f64) -> f64 {
        (self.clock_ms - now_ms).max(0.0) + self.pending_prefill_tokens() as f64 * self.per_token_ms
    }

    /// Executes one prefill iteration at the local clock.
    ///
    /// Admission and chunk planning are both TTFT-tier ordered: the
    /// waiting queue is kept sorted by first-token deadline, and chunks go
    /// to the running request with the tightest TTFT SLO first, so an
    /// interactive prompt is never parked behind a long article. Advances
    /// the local clock and returns every request whose prefill completed
    /// this iteration (migration-ready, KV released here).
    ///
    /// # Errors
    ///
    /// [`RunError::KvCapacity`] when the tightest waiting prompt exceeds
    /// the replica's entire KV pool — it can never be admitted, so the
    /// replica fails fast instead of idle-ticking to a time cap.
    pub fn step(&mut self) -> Result<Vec<LiveRequest>, RunError> {
        // TTFT-tier admission: tightest deadline enters first.
        self.core.waiting.make_contiguous().sort_by(tier_order);
        self.core.admit_fifo();

        // TTFT-tier chunk sizing within the iteration budget.
        let mut order: Vec<usize> = (0..self.core.running.len())
            .filter(|&i| self.core.running[i].phase == Phase::Prefilling)
            .collect();
        order.sort_by(|&a, &b| tier_order(&self.core.running[a], &self.core.running[b]));
        let mut remaining = self.chunk_budget;
        let mut plan: Vec<(usize, u32)> = Vec::new();
        for i in order {
            if remaining == 0 {
                break;
            }
            let chunk = self.core.running[i].prefill_remaining().min(remaining);
            if chunk > 0 {
                plan.push((i, chunk));
                remaining -= chunk;
            }
        }

        let latency_ms = if plan.is_empty() {
            // Every admitted prompt yields a chunk and every completed one
            // left via take_prefilled, so an empty plan means the running
            // batch is empty — with the whole pool free, the front waiting
            // prompt (if any) can never be admitted.
            if self.core.waiting.is_empty() {
                1.0 // Called without work: harmless idle tick.
            } else {
                let front = self.core.waiting.front().expect("non-empty").spec.id;
                return Err(RunError::kv_capacity()
                    .at(Pool::Prefill, self.id)
                    .for_request(front));
            }
        } else {
            let mut pass = ForwardPass::default();
            for &(i, chunk) in &plan {
                pass.push(SeqWork::prefill(chunk, self.core.running[i].prefilled()));
            }
            let ms = self
                .core
                .config
                .testbed
                .target
                .forward_latency_ms(&pass, false);
            self.core.apply_prefill(&plan);
            self.core.breakdown.prefill_ms += ms;
            self.prefill_tokens += plan.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
            ms
        };

        // An injected slowdown stretches the modelled iteration latency.
        let latency_ms = latency_ms * self.latency_factor;
        self.guard
            .observe(latency_ms)
            .map_err(|e| e.at(Pool::Prefill, self.id))?;
        self.clock_ms += latency_ms.max(1e-6);
        self.iterations += 1;

        let done = self.core.take_prefilled();
        self.prefilled_requests += done.len() as u64;
        Ok(done)
    }

    /// Crash semantics for fault injection: every request this replica
    /// holds (waiting and mid-prefill) loses its KV and is returned to
    /// the caller; the replica takes no work until
    /// [`PrefillReplica::recover`].
    pub fn crash(&mut self, now_ms: f64) -> Vec<workload::RequestSpec> {
        self.down = true;
        self.clock_ms = self.clock_ms.max(now_ms);
        self.core.evict_all_for_crash()
    }

    /// The crashed replica rejoins dispatch at `now_ms` with a cold KV
    /// pool and prefix cache.
    pub fn recover(&mut self, now_ms: f64) {
        self.down = false;
        self.clock_ms = self.clock_ms.max(now_ms);
    }
}

/// Deadline ordering shared by admission and chunk planning: tightest TTFT
/// SLO first, then earliest arrival, then id (total and deterministic).
fn tier_order(a: &LiveRequest, b: &LiveRequest) -> std::cmp::Ordering {
    a.spec
        .ttft_slo_ms
        .total_cmp(&b.spec.ttft_slo_ms)
        .then(a.spec.arrival_ms.total_cmp(&b.spec.arrival_ms))
        .then(a.spec.id.cmp(&b.spec.id))
}

/// The prefill pool: all prefill-only replicas of a disaggregated cluster.
#[derive(Debug)]
pub struct PrefillPool {
    /// The replicas, indexed by id.
    pub replicas: Vec<PrefillReplica>,
}

impl PrefillPool {
    /// Builds a pool of replicas over the given deployment configs.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<SystemConfig>) -> Self {
        assert!(!configs.is_empty(), "a prefill pool needs a replica");
        Self {
            replicas: configs
                .into_iter()
                .enumerate()
                .map(|(id, config)| PrefillReplica::new(id, config))
                .collect(),
        }
    }

    /// Indices of replicas currently accepting arrivals; falls back to all
    /// replicas when the whole pool is draining (degrade, don't drop).
    /// Down (crashed) replicas are never eligible targets.
    pub fn eligible(&self) -> Vec<usize> {
        cluster::accepting_or_all(self.replicas.iter().map(|r| r.accepting && !r.down))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Category, RequestSpec};

    fn spec(id: u64, prompt: u32, ttft_slo_ms: f64) -> RequestSpec {
        RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: prompt,
            output_len: 8,
            tpot_slo_ms: 50.0,
            ttft_slo_ms,
            stream_seed: id ^ 0xD15A,
            prefix: None,
        }
    }

    fn replica(chunk: u32) -> PrefillReplica {
        PrefillReplica::with_chunk_budget(0, SystemConfig::llama70b(1), chunk)
    }

    #[test]
    fn prefills_whole_prompts_and_hands_them_off() {
        let mut r = replica(2048);
        r.core.on_arrival(spec(0, 100, 1_000.0));
        let done = r.step().expect("step");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].prefill_remaining(), 0);
        assert_eq!(done[0].generated(), 0, "prefill replicas never decode");
        assert!(done[0].decode_start_ms.is_none(), "no decode stamp here");
        assert_eq!(r.prefilled_requests, 1);
        assert_eq!(r.prefill_tokens, 100);
        assert!(!r.has_work());
        // KV fully released after the handoff.
        assert_eq!(r.core.blocks.free_blocks(), r.core.blocks.total_blocks());
    }

    #[test]
    fn tight_ttft_tier_prefills_first() {
        let mut r = replica(256);
        r.core.on_arrival(spec(0, 600, 8_000.0)); // batch tier, long
        r.core.on_arrival(spec(1, 200, 400.0)); // interactive tier
                                                // First step admits both in deadline order: the interactive prompt
                                                // claims the budget first and finishes despite arriving second;
                                                // the batch prompt only gets the remainder.
        let done = r.step().expect("step");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].spec.id, 1, "interactive prompt finishes first");
        let batch = r.core.running.iter().find(|q| q.spec.id == 0).unwrap();
        assert_eq!(batch.prefilled(), 56, "batch tier got the remainder");
    }

    #[test]
    fn oversized_prompt_fails_fast_with_kv_capacity() {
        let mut r = replica(2048);
        // 4 blocks × 16 tokens = 64-token pool vs a 500-token prompt.
        r.core.blocks = serving::BlockManager::new(4, 16);
        r.core.on_arrival(spec(0, 500, 8_000.0));
        let err = r.step().unwrap_err();
        assert_eq!(err.kind(), serving::RunErrorKind::KvCapacity);
        assert_eq!(err.site().pool, Some(Pool::Prefill));
        assert_eq!(err.site().request, Some(0), "error names the request");
    }

    #[test]
    fn drain_estimate_tracks_pending_tokens() {
        let mut r = replica(2048);
        assert_eq!(r.drain_estimate_ms(0.0), 0.0);
        r.core.on_arrival(spec(0, 1000, 1_000.0));
        let est = r.drain_estimate_ms(0.0);
        assert!(est > 0.0);
        r.core.on_arrival(spec(1, 1000, 1_000.0));
        assert!(r.drain_estimate_ms(0.0) > est, "more tokens, more load");
    }

    #[test]
    fn pool_eligibility_degrades_when_all_drained() {
        let mut pool = PrefillPool::new(vec![SystemConfig::llama70b(1); 2]);
        assert_eq!(pool.eligible(), vec![0, 1]);
        pool.replicas[0].accepting = false;
        assert_eq!(pool.eligible(), vec![1]);
        pool.replicas[1].accepting = false;
        assert_eq!(pool.eligible(), vec![0, 1], "whole pool draining");
    }
}
