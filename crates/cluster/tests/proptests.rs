//! Property tests for the cluster driver's core invariants.
//!
//! * **Request conservation** — every request in the workload finishes
//!   exactly once, on exactly one replica, regardless of router policy,
//!   replica count, engine mix or drain/join events; the merge loses and
//!   duplicates nothing.
//! * **Determinism** — a cluster run is a pure function of (workload,
//!   fleet, router, events): repeating it reproduces identical merged
//!   records.

use adaserve_core::AdaServeEngine;
use baselines::{SarathiEngine, VllmEngine};
use cluster::{Cluster, RouterKind, ScalingAction, ScalingEvent};
use proptest::prelude::*;
use serving::{
    ExecMode, ReplicaAddr, RunOptions, RunReport, ServeSession, ServingEngine, SystemConfig,
};
use workload::{Category, RequestSpec, Workload};

/// A deterministic mixed fleet: engine type and GPU profile vary by index.
fn fleet(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|i| {
            let config = if i % 3 == 2 {
                SystemConfig::new(roofline::Testbed::llama70b_h100(), seed)
            } else {
                SystemConfig::llama70b(seed)
            };
            match i % 3 {
                0 => Box::new(AdaServeEngine::new(config)) as Box<dyn ServingEngine>,
                1 => Box::new(VllmEngine::new(config)),
                _ => Box::new(SarathiEngine::new(config)),
            }
        })
        .collect()
}

/// Small synthetic workload derived from a seed (kept tiny: each proptest
/// case is a full multi-engine simulation).
fn workload(seed: u64, n_requests: u64) -> Workload {
    let requests = (0..n_requests)
        .map(|id| {
            let h = simllm::hash::seed_stream(seed, id);
            let category = Category::ALL[(h % 3) as usize];
            RequestSpec {
                id,
                category,
                arrival_ms: id as f64 * (5.0 + (h % 40) as f64),
                prompt_len: 8 + (h % 48) as u32,
                output_len: 4 + (h % 12) as u32,
                tpot_slo_ms: match category {
                    Category::CodingCopilot => 28.0,
                    Category::Chatbot => 50.0,
                    Category::Summarization => 150.0,
                },
                ttft_slo_ms: category.ttft_slo().resolve(25.0),
                stream_seed: h,
                prefix: None,
            }
        })
        .collect();
    Workload {
        requests,
        description: format!("proptest seed {seed}"),
    }
}

fn run_cluster(
    seed: u64,
    n_requests: u64,
    n_replicas: usize,
    router: RouterKind,
    events: Vec<ScalingEvent>,
) -> RunReport {
    run_cluster_stepping(
        seed,
        n_requests,
        n_replicas,
        router,
        events,
        ExecMode::default(),
    )
}

fn run_cluster_stepping(
    seed: u64,
    n_requests: u64,
    n_replicas: usize,
    router: RouterKind,
    events: Vec<ScalingEvent>,
    mode: ExecMode,
) -> RunReport {
    let mut session = ServeSession::with_options(
        Cluster::new(fleet(n_replicas, seed), router.build()).with_exec_mode(mode),
        RunOptions::default(),
    );
    for e in events {
        session.scale_at(e.at_ms, ReplicaAddr::serving(e.replica), e.action);
    }
    session
        .serve(&workload(seed, n_requests))
        .expect("cluster run completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_request_finishes_exactly_once(
        seed in 0u64..1_000,
        n_requests in 1u64..24,
        n_replicas in 1usize..5,
        router_index in 0usize..4,
    ) {
        let router = RouterKind::ALL[router_index];
        let result = run_cluster(seed, n_requests, n_replicas, router, Vec::new());

        // Conservation: merged records cover the workload exactly.
        prop_assert_eq!(result.records.len() as u64, n_requests);
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..n_requests).collect();
        prop_assert_eq!(ids, expected, "each id exactly once");

        // Per-replica streams partition the merged stream.
        let routed: u64 = result.units.iter().map(|u| u.routed).sum();
        prop_assert_eq!(routed, n_requests);
        let per_replica_total: usize = result
            .units
            .iter()
            .map(|u| u.result.records.len())
            .sum();
        prop_assert_eq!(per_replica_total, result.records.len());
        for u in &result.units {
            prop_assert_eq!(u.result.records.len() as u64, u.routed,
                "a replica finishes exactly what was routed to it");
        }
    }

    #[test]
    fn drain_join_events_lose_no_requests(
        seed in 0u64..1_000,
        n_requests in 2u64..20,
        drain_at in 1.0f64..400.0,
    ) {
        let events = vec![
            ScalingEvent { at_ms: drain_at, replica: 0, action: ScalingAction::Drain },
            ScalingEvent { at_ms: drain_at * 2.0, replica: 0, action: ScalingAction::Join },
        ];
        let result = run_cluster(seed, n_requests, 3, RouterKind::SloAware, events);
        prop_assert_eq!(result.records.len() as u64, n_requests);
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, n_requests);
    }

    #[test]
    fn runs_are_deterministic_under_fixed_seed(
        seed in 0u64..1_000,
        n_requests in 1u64..16,
        n_replicas in 1usize..4,
        router_index in 0usize..4,
    ) {
        let router = RouterKind::ALL[router_index];
        let a = run_cluster(seed, n_requests, n_replicas, router, Vec::new());
        let b = run_cluster(seed, n_requests, n_replicas, router, Vec::new());
        prop_assert_eq!(a.records, b.records, "merged records reproduce");
        prop_assert_eq!(a.end_ms, b.end_ms);
        prop_assert_eq!(a.iterations, b.iterations);
        let shares_a: Vec<u64> = a.units.iter().map(|u| u.routed).collect();
        let shares_b: Vec<u64> = b.units.iter().map(|u| u.routed).collect();
        prop_assert_eq!(shares_a, shares_b, "routing decisions reproduce");
    }

    /// Sharded stepping (any worker count, including auto, inline and
    /// more workers than replicas) is output-identical to sequential
    /// stepping at awkward fleet shapes — 1, 3 and 7 replicas — and
    /// across mid-run drain/join scaling events.
    #[test]
    fn sharded_stepping_matches_sequential(
        seed in 0u64..1_000,
        n_requests in 1u64..20,
        shape_index in 0usize..3,
        workers_index in 0usize..4,
        router_index in 0usize..4,
        with_scaling in any::<bool>(),
        drain_at in 1.0f64..400.0,
    ) {
        let n_replicas = [1usize, 3, 7][shape_index];
        // Some(16) exceeds every fleet shape: empty shards must steal.
        let workers = [None, Some(1), Some(2), Some(16)][workers_index];
        let router = RouterKind::ALL[router_index];
        let events = if with_scaling {
            vec![
                ScalingEvent {
                    at_ms: drain_at,
                    replica: n_replicas - 1,
                    action: ScalingAction::Drain,
                },
                ScalingEvent {
                    at_ms: drain_at * 2.0,
                    replica: n_replicas - 1,
                    action: ScalingAction::Join,
                },
            ]
        } else {
            Vec::new()
        };
        let par = run_cluster_stepping(
            seed, n_requests, n_replicas, router, events.clone(),
            ExecMode::Sharded { workers },
        );
        let seq = run_cluster_stepping(
            seed, n_requests, n_replicas, router, events, ExecMode::Sequential,
        );
        prop_assert_eq!(par.records, seq.records, "records byte-identical");
        prop_assert_eq!(par.end_ms, seq.end_ms);
        prop_assert_eq!(par.iterations, seq.iterations);
        let shares_p: Vec<u64> = par.units.iter().map(|u| u.routed).collect();
        let shares_s: Vec<u64> = seq.units.iter().map(|u| u.routed).collect();
        prop_assert_eq!(shares_p, shares_s, "same routing under sharded stepping");
    }
}
