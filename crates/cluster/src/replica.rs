//! One cluster member: a serving engine plus its routing-visible state.

use metrics::telemetry::Tracer;
use serving::{
    finalize_run, trace_replica, DeploymentEvent, LifecycleTracker, Pool, ProbeState, ReplicaAddr,
    RunError, RunOptions, RunResult, ServingEngine, StallGuard, StepProbe,
};

/// Fraction of a baseline decode step attributed to one *prefill* token in
/// the load model (prefill processes hundreds of tokens per forward pass,
/// so a queued prompt token is far cheaper than a queued output token).
const PREFILL_TOKEN_COST: f64 = 1.0 / 256.0;

/// Effective decode batch width used to amortize queued output tokens in
/// the drain-time estimate: a replica emits one token per running request
/// per iteration, up to roughly this much useful parallelism.
const EFFECTIVE_DECODE_WIDTH: f64 = 8.0;

/// Work committed to a replica but not yet in its engine's queues — KV
/// migrations in flight (or parked on a full pool) in a disaggregated
/// deployment. Folded into the load views routers consume so consecutive
/// routing decisions see each other; colocated drivers leave it zeroed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InboundWork {
    /// Requests bound here that the engine cannot see yet.
    pub requests: usize,
    /// Output tokens those requests will decode on arrival.
    pub decode_tokens: u64,
    /// The TPOT SLOs those requests carry, so
    /// [`Replica::tight_outstanding`] — and through it the SLO-aware
    /// packing policy — sees a tight burst before it lands.
    pub tpot_slos: Vec<f64>,
}

/// A replica of the cluster: one serving engine advancing on its own local
/// clock under the cluster driver's global ordering.
///
/// Routers observe replicas read-only through the load/queue accessors
/// here; only the driver mutates them.
pub struct Replica {
    /// Stable replica index within the cluster.
    pub id: usize,
    /// The engine this replica runs (any [`ServingEngine`] — AdaServe or a
    /// baseline — possibly on a different GPU profile than its peers).
    pub engine: Box<dyn ServingEngine>,
    /// Local clock: the simulation time at which the replica's last
    /// iteration ended (equivalently, when its next iteration may start).
    pub clock_ms: f64,
    /// Whether the router may place new requests here. Toggled by
    /// drain/join scaling events; a draining replica still serves its
    /// queued work to completion.
    pub accepting: bool,
    /// Whether the replica is crashed (fault injection). A down replica
    /// holds no requests — the crash evicted them — and is excluded from
    /// stepping and routing until [`Replica::recover`].
    pub down: bool,
    /// Iteration-latency multiplier for an injected transient slowdown
    /// (1.0 when healthy — an exact IEEE identity, so fault-free runs
    /// stay bit-identical).
    pub latency_factor: f64,
    /// Requests routed to this replica so far.
    pub routed: u64,
    /// Routed-but-not-yet-queued work (in-flight KV migrations).
    pub inbound: InboundWork,
    pub(crate) guard: StallGuard,
    /// Per-replica lifecycle announcements. Requests live on exactly one
    /// replica (migrations transfer their state via
    /// [`Replica::mark_admitted`]), so per-replica trackers are
    /// equivalent to a shared one — and they let independent replicas
    /// step on parallel worker threads.
    tracker: LifecycleTracker,
    /// High-water mark of announced finished records on this core.
    finished_seen: usize,
    /// Trace sink (shared fleet-wide); off by default.
    pub(crate) tracer: Tracer,
    /// Lifecycle memory for the iteration probe (populated only while
    /// tracing).
    probe_state: ProbeState,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("engine", &self.engine.name())
            .field("clock_ms", &self.clock_ms)
            .field("accepting", &self.accepting)
            .field("routed", &self.routed)
            .finish()
    }
}

impl Replica {
    /// Wraps `engine` as replica `id`, accepting traffic from time zero.
    pub fn new(id: usize, engine: Box<dyn ServingEngine>) -> Self {
        Self {
            id,
            engine,
            clock_ms: 0.0,
            accepting: true,
            down: false,
            latency_factor: 1.0,
            routed: 0,
            inbound: InboundWork::default(),
            guard: StallGuard::default(),
            tracker: LifecycleTracker::default(),
            finished_seen: 0,
            tracer: Tracer::off(),
            probe_state: ProbeState::default(),
        }
    }

    /// Installs the fleet-shared trace sink (clones share one log).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Scans this replica's core for newly due lifecycle events
    /// (admissions, first tokens, finished records) at the replica's
    /// current clock, appending them to `out`.
    pub fn scan_lifecycle(&mut self, addr: ReplicaAddr, out: &mut Vec<DeploymentEvent>) {
        let at_ms = self.clock_ms;
        self.tracker.scan_core(
            self.engine.core(),
            addr,
            at_ms,
            &mut self.finished_seen,
            out,
        );
    }

    /// Records a request as already announced-admitted elsewhere (e.g. on
    /// the prefill pool that migrated it here), so this replica's scans
    /// do not re-announce it.
    pub fn mark_admitted(&mut self, id: u64) {
        self.tracker.mark_admitted(id);
    }

    /// Drops all lifecycle memory of `id` (the request was lost to a
    /// fault before reaching this replica's queues): if the session
    /// re-dispatches it, it announces itself afresh wherever it lands.
    pub fn forget(&mut self, id: u64) {
        self.tracker.forget(id);
    }

    /// Finalizes this replica's engine run (draining its completion
    /// records into the returned [`RunResult`]) and rewinds the
    /// lifecycle high-water mark to match the now-empty record buffer,
    /// so the deployment can serve another workload without the
    /// tracker indexing past records a previous run already drained.
    pub fn finalize(&mut self) -> RunResult {
        self.finished_seen = 0;
        finalize_run(self.engine.as_mut(), self.clock_ms)
    }

    /// One checked engine iteration: step, enforce the run caps, scan
    /// lifecycle events — the single body **both** sequential stepping
    /// ([`crate::Cluster`]'s `step`) and parallel batch stepping
    /// ([`Replica::run_until`]) execute, so the two modes cannot diverge.
    pub fn step_checked(
        &mut self,
        addr: ReplicaAddr,
        options: &RunOptions,
        events: &mut Vec<DeploymentEvent>,
    ) -> Result<f64, RunError> {
        let latency_ms = self.step_once()?;
        if self.engine.core().iterations > options.max_iterations {
            return Err(RunError::iteration_cap().at(addr.pool, addr.index));
        }
        if self.clock_ms > options.max_sim_ms {
            return Err(RunError::time_cap().at(addr.pool, addr.index));
        }
        self.scan_lifecycle(addr, events);
        Ok(latency_ms)
    }

    /// Steps this replica until its clock reaches `horizon_ms` or it runs
    /// out of work, enforcing the run caps after every iteration and
    /// appending lifecycle events (scanned at each iteration's end clock,
    /// exactly as sequential stepping would) to `events`.
    ///
    /// This is the per-replica body of parallel batch stepping: replicas
    /// do not interact between external events, so running each to the
    /// horizon on its own worker thread reproduces the sequential
    /// interleaving's per-replica state bit for bit.
    pub fn run_until(
        &mut self,
        addr: ReplicaAddr,
        horizon_ms: f64,
        options: &RunOptions,
        events: &mut Vec<DeploymentEvent>,
    ) -> Result<(), RunError> {
        while self.has_work() && self.clock_ms < horizon_ms {
            self.step_checked(addr, options, events)?;
        }
        Ok(())
    }

    /// Executes one engine iteration at the replica's local clock, feeding
    /// the stall guard and advancing the clock by the iteration's latency.
    ///
    /// Returns the iteration latency. Both the [`crate::Cluster`] driver
    /// and external drivers that interleave replicas under their own global
    /// clock (the disaggregated decode pool) step replicas through this one
    /// method so stall detection and clock bookkeeping cannot diverge.
    pub fn step_once(&mut self) -> Result<f64, RunError> {
        let probe = StepProbe::begin(&self.tracer, self.engine.core());
        let step = self.engine.step(self.clock_ms);
        // An injected slowdown stretches the modelled iteration latency.
        let latency_ms = step.latency_ms * self.latency_factor;
        self.engine.core_mut().iterations += 1;
        self.guard
            .observe(latency_ms)
            .map_err(|e| e.at(Pool::Decode, self.id))?;
        self.clock_ms += latency_ms.max(1e-6);
        if let Some(probe) = probe {
            probe.finish(
                &self.tracer,
                self.engine.core(),
                trace_replica(ReplicaAddr::serving(self.id)),
                self.clock_ms,
                latency_ms,
                &mut self.probe_state,
            );
        }
        Ok(latency_ms)
    }

    /// Crash semantics for fault injection: every request this replica
    /// holds loses its KV and is returned to the caller (the front door
    /// decides retry vs. reject), the replica's lifecycle memory of them
    /// is dropped (a retried request re-announces itself), and the
    /// replica is marked down until [`Replica::recover`].
    pub fn crash(&mut self, now_ms: f64) -> Vec<workload::RequestSpec> {
        self.down = true;
        self.clock_ms = self.clock_ms.max(now_ms);
        let lost = self.engine.core_mut().evict_all_for_crash();
        for spec in &lost {
            self.tracker.forget(spec.id);
        }
        lost
    }

    /// The crashed replica rejoins service at `now_ms` with a cold KV
    /// pool and prefix cache.
    pub fn recover(&mut self, now_ms: f64) {
        self.down = false;
        self.clock_ms = self.clock_ms.max(now_ms);
    }

    /// Requests waiting for admission on this replica.
    pub fn waiting_len(&self) -> usize {
        self.engine.core().waiting.len()
    }

    /// Requests admitted and in flight on this replica.
    pub fn running_len(&self) -> usize {
        self.engine.core().running.len()
    }

    /// Outstanding requests (waiting + running + inbound).
    pub fn outstanding(&self) -> usize {
        self.waiting_len() + self.running_len() + self.inbound.requests
    }

    /// Whether the replica has queued or in-flight work.
    pub fn has_work(&self) -> bool {
        self.engine.core().has_work()
    }

    /// This replica's near-zero-load decode latency (its speed class).
    pub fn baseline_ms(&self) -> f64 {
        self.engine.core().config.baseline_ms
    }

    /// Queued work in tokens: `(prefill_tokens, decode_tokens)` summed over
    /// waiting, running and inbound requests.
    pub fn queued_tokens(&self) -> (u64, u64) {
        let core = self.engine.core();
        let mut prefill = 0u64;
        let mut decode = self.inbound.decode_tokens;
        for r in core.waiting.iter().chain(core.running.iter()) {
            prefill += u64::from(r.prefill_remaining());
            decode += u64::from(r.remaining());
        }
        (prefill, decode)
    }

    /// Modelled time to drain the current queue, in milliseconds.
    ///
    /// A hardware-normalized load heuristic, not a simulation: queued
    /// output tokens cost one baseline decode step amortized over an
    /// effective batch width, queued prompt tokens a small fraction of
    /// one. Because it scales with the replica's own `baseline_ms`, a
    /// faster GPU profile correctly reports less load for the same queue —
    /// the quantity join-shortest-queue routing compares.
    pub fn modelled_load_ms(&self) -> f64 {
        let (prefill, decode) = self.queued_tokens();
        let width = (self.running_len().max(1) as f64).min(EFFECTIVE_DECODE_WIDTH);
        self.baseline_ms() * (prefill as f64 * PREFILL_TOKEN_COST + decode as f64 / width)
    }

    /// Drain estimate as seen from global time `now_ms`: the modelled queue
    /// drain plus any head start the replica's local clock already has on
    /// the global frontier (a busy replica cannot start new work before its
    /// current iteration ends).
    pub fn drain_estimate_ms(&self, now_ms: f64) -> f64 {
        (self.clock_ms - now_ms).max(0.0) + self.modelled_load_ms()
    }

    /// The longest block-aligned prefix of `spec`'s prompt resident in
    /// this replica's engine-level [`serving::PrefixCache`], in tokens
    /// (0 without a cache). `prompt` is the pre-derived prompt stream —
    /// derive it once per arrival, probe every replica.
    pub fn cached_prefix_tokens(
        &self,
        spec: &workload::RequestSpec,
        prompt: &[simllm::TokenId],
    ) -> u32 {
        self.engine
            .core()
            .prefix
            .as_ref()
            .map_or(0, |c| c.peek(prompt, spec.prompt_len.saturating_sub(1)))
    }

    /// Outstanding requests whose TPOT SLO is at most `tight_ms`
    /// (queued, running and inbound).
    pub fn tight_outstanding(&self, tight_ms: f64) -> usize {
        let core = self.engine.core();
        core.waiting
            .iter()
            .chain(core.running.iter())
            .filter(|r| r.spec.tpot_slo_ms <= tight_ms)
            .count()
            + self
                .inbound
                .tpot_slos
                .iter()
                .filter(|&&slo| slo <= tight_ms)
                .count()
    }
}
