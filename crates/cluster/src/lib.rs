//! Multi-replica cluster serving: fleets of engines behind a router.
//!
//! The paper's evaluation drives a single engine; production multi-SLO
//! serving (and the follow-on systems AdaServe is compared against) runs
//! *fleets* of engines behind a request router. This crate simulates that
//! setting on the same deterministic substrate:
//!
//! * [`replica`] — a [`Replica`] wraps any [`serving::ServingEngine`]
//!   (AdaServe, any baseline, any GPU profile) with a local clock and the
//!   load views routers consume;
//! * [`router`] — the [`Router`] trait and five policies: [`RoundRobin`],
//!   [`LeastOutstanding`], [`JoinShortestQueue`] (by hardware-normalized
//!   modelled load), [`SloAware`], the cluster analogue of the paper's
//!   §4.3 two-phase budget split (tight-TPOT requests to the least-loaded
//!   replica, throughput-tier requests packed), and [`PrefixAffinity`],
//!   which sends a request to the replica holding its longest cached
//!   prompt prefix (see [`serving::PrefixCache`]) unless that replica is
//!   saturated;
//! * [`driver`] — the [`Cluster`]: a fleet of replicas behind one router,
//!   implementing [`serving::Deployment`] so a [`serving::ServeSession`]
//!   drives it (arrival routing, per-replica iterations interleaved under
//!   the session's global clock, drain/join scaling via the session's
//!   timeline or legacy [`ScalingEvent`]s), merging all completion
//!   records into one fleet-wide stream for [`metrics`].
//!
//! Run a cluster through the front door:
//! `ServeSession::new(cluster).serve(&workload)` — or
//! `serve_online(...)` for mid-run submission/scaling. The legacy batch
//! `Cluster::run` remains as a deprecated, output-equivalent shim.
//!
//! Replicas may be heterogeneous: each engine carries its own
//! [`serving::SystemConfig`], so one fleet can mix A100 and H100 profiles
//! (`roofline::Testbed::llama70b_h100`). Build workloads against
//! [`Cluster::max_baseline_ms`] so baseline-relative SLOs stay attainable
//! on the slowest replica.

pub mod driver;
pub mod replica;
pub mod router;

pub use driver::{
    accepting_or_all, max_baseline_ms, Cluster, ClusterRunResult, ReplicaResult, ScalingAction,
    ScalingEvent,
};
pub use replica::{InboundWork, Replica};
pub use router::{
    two_phase_pick, JoinShortestQueue, LeastOutstanding, PrefixAffinity, RoundRobin, Router,
    RouterKind, SloAware,
};
