//! Request routing policies for the cluster driver.
//!
//! The driver consults the [`Router`] once per arrival, passing the full
//! replica slice plus the indices currently eligible (accepting) — the
//! router must return one of the eligible indices. Policies range from the
//! oblivious (round-robin) to the SLO-aware two-phase split that mirrors,
//! at cluster granularity, the paper's §4.3 budget split between
//! SLO-constrained and throughput-tier requests.

use crate::replica::Replica;
use workload::RequestSpec;

/// A request-routing policy.
///
/// `route` may keep internal state (round-robin's cursor); it must be a
/// deterministic function of that state and its arguments so cluster runs
/// reproduce bit-identically under a fixed seed.
pub trait Router {
    /// Policy name for reports.
    fn name(&self) -> String;

    /// Chooses the replica for `spec`, as an index into `replicas`.
    ///
    /// `eligible` is the non-empty, ascending list of replica indices the
    /// driver will accept; returning anything else is a policy bug (the
    /// driver falls back to the first eligible replica and debug-asserts).
    fn route(
        &mut self,
        spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize;
}

impl std::fmt::Debug for dyn Router + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({})", self.name())
    }
}

/// Cycles through eligible replicas in order, ignoring load entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: u64,
}

impl Router for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(
        &mut self,
        _spec: &RequestSpec,
        _now_ms: f64,
        _replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        let pick = eligible[(self.cursor % eligible.len() as u64) as usize];
        self.cursor += 1;
        pick
    }
}

/// Sends each request to the eligible replica with the fewest outstanding
/// (waiting + running) requests; ties break on the lowest replica id.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastOutstanding;

impl Router for LeastOutstanding {
    fn name(&self) -> String {
        "least-outstanding".into()
    }

    fn route(
        &mut self,
        _spec: &RequestSpec,
        _now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        *eligible
            .iter()
            .min_by_key(|&&i| (replicas[i].outstanding(), i))
            .expect("eligible is non-empty")
    }
}

/// Join-shortest-queue by *modelled load*: minimizes the hardware-normalized
/// drain-time estimate ([`Replica::drain_estimate_ms`]), so a fast replica
/// with a longer queue can still win over a slow one with a shorter queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl Router for JoinShortestQueue {
    fn name(&self) -> String {
        "jsq-load".into()
    }

    fn route(
        &mut self,
        _spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        *eligible
            .iter()
            .min_by(|&&a, &&b| {
                replicas[a]
                    .drain_estimate_ms(now_ms)
                    .total_cmp(&replicas[b].drain_estimate_ms(now_ms))
                    .then(a.cmp(&b))
            })
            .expect("eligible is non-empty")
    }
}

/// The tight/pack placement shared by [`SloAware`] routing and the
/// disaggregated dispatcher's prefill-side TTFT routing.
///
/// `load` and `tight` give a candidate's modelled backlog and its count
/// of outstanding tight-SLO requests by replica index; both are evaluated
/// exactly once per eligible candidate. A tight request goes to the
/// least-loaded candidate (ties: fewest tight, lowest index). A loose
/// request *packs*: among candidates still under `pack_ceiling` the ones
/// carrying the fewest tight requests are considered and the most-loaded
/// of them wins (ties: lowest index), concentrating relaxed traffic on
/// few replicas while steering it away from tight work; when every
/// candidate is over the ceiling, it falls back to the least-loaded.
///
/// # Panics
///
/// Panics if `eligible` is empty.
pub fn two_phase_pick(
    eligible: &[usize],
    is_tight: bool,
    pack_ceiling: f64,
    load: impl Fn(usize) -> f64,
    tight: impl Fn(usize) -> usize,
) -> usize {
    assert!(!eligible.is_empty(), "eligible is non-empty");
    let metrics: Vec<(usize, f64, usize)> =
        eligible.iter().map(|&i| (i, load(i), tight(i))).collect();
    if is_tight {
        return metrics
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)))
            .expect("eligible is non-empty")
            .0;
    }
    let under: Vec<&(usize, f64, usize)> = metrics.iter().filter(|m| m.1 <= pack_ceiling).collect();
    if let Some(min_tight) = under.iter().map(|m| m.2).min() {
        return under
            .iter()
            .filter(|m| m.2 == min_tight)
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("under is non-empty")
            .0;
    }
    // Everything is saturated: fall back to least loaded.
    metrics
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .expect("eligible is non-empty")
        .0
}

/// The cluster analogue of the paper's §4.3 two-phase budget split.
///
/// Requests whose TPOT SLO is at most `tight_ms` are *SLO-constrained*:
/// they go to the least-loaded eligible replica (by drain estimate, then
/// fewest tight requests) so their decode iterations stay fast.
/// Throughput-tier requests are *packed* via [`two_phase_pick`]: among
/// replicas under `pack_ceiling_ms`, the most-loaded one carrying the
/// fewest tight requests takes them, concentrating relaxed traffic on few
/// replicas and keeping the rest of the fleet drained for tight arrivals.
#[derive(Debug, Clone, Copy)]
pub struct SloAware {
    /// TPOT SLO (ms) at or below which a request is treated as tight.
    pub tight_ms: f64,
    /// Load ceiling (ms of modelled drain) above which a replica stops
    /// being a packing target for throughput-tier requests.
    pub pack_ceiling_ms: f64,
}

impl SloAware {
    /// Policy with explicit thresholds.
    pub fn new(tight_ms: f64, pack_ceiling_ms: f64) -> Self {
        assert!(tight_ms > 0.0 && pack_ceiling_ms > 0.0);
        Self {
            tight_ms,
            pack_ceiling_ms,
        }
    }
}

impl Default for SloAware {
    /// Defaults sized for the paper's Table 2 mix: 60 ms classifies the
    /// coding-copilot (≈1.2× baseline) and chatbot (50 ms) categories as
    /// tight and summarization (150 ms) as throughput-tier; the 2 s pack
    /// ceiling is roughly the modelled drain of a deeply backlogged
    /// replica.
    fn default() -> Self {
        Self {
            tight_ms: 60.0,
            pack_ceiling_ms: 2_000.0,
        }
    }
}

impl Router for SloAware {
    fn name(&self) -> String {
        "slo-aware".into()
    }

    fn route(
        &mut self,
        spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        two_phase_pick(
            eligible,
            spec.tpot_slo_ms <= self.tight_ms,
            self.pack_ceiling_ms,
            |i| replicas[i].drain_estimate_ms(now_ms),
            |i| replicas[i].tight_outstanding(self.tight_ms),
        )
    }
}

/// Routes to the eligible replica holding the *longest cached prefix* of
/// the request's prompt (its engine's cross-request
/// [`serving::PrefixCache`]), so shared-system-prompt and multi-turn
/// traffic lands where its KV is already warm and prefill shrinks to the
/// uncached suffix.
///
/// Ties — and the cache-cold case where no replica holds any prefix —
/// break on the smallest modelled drain estimate, then the lowest index
/// (i.e. it degrades to [`JoinShortestQueue`]). Warmth only wins while
/// the replica is not saturated: a warm replica whose drain estimate
/// exceeds `max_warm_drain_ms` is treated as cold, so affinity never
/// starves load balance.
#[derive(Debug, Clone, Copy)]
pub struct PrefixAffinity {
    /// Drain estimate (ms) above which a warm replica no longer attracts
    /// traffic on cache affinity alone.
    pub max_warm_drain_ms: f64,
}

impl PrefixAffinity {
    /// Policy with an explicit saturation ceiling.
    pub fn new(max_warm_drain_ms: f64) -> Self {
        assert!(max_warm_drain_ms > 0.0);
        Self { max_warm_drain_ms }
    }
}

impl Default for PrefixAffinity {
    /// Matches [`SloAware`]'s 2 s pack ceiling: beyond that backlog, KV
    /// reuse no longer pays for the queueing delay.
    fn default() -> Self {
        Self {
            max_warm_drain_ms: 2_000.0,
        }
    }
}

impl Router for PrefixAffinity {
    fn name(&self) -> String {
        "prefix-affinity".into()
    }

    fn route(
        &mut self,
        spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        let prompt = spec.prompt_tokens();
        let best_warm = eligible
            .iter()
            .filter(|&&i| replicas[i].drain_estimate_ms(now_ms) <= self.max_warm_drain_ms)
            .map(|&i| (i, replicas[i].cached_prefix_tokens(spec, &prompt)))
            .filter(|&(_, cached)| cached > 0)
            .max_by(|a, b| {
                a.1.cmp(&b.1)
                    .then_with(|| {
                        replicas[b.0]
                            .drain_estimate_ms(now_ms)
                            .total_cmp(&replicas[a.0].drain_estimate_ms(now_ms))
                    })
                    .then(b.0.cmp(&a.0))
            });
        if let Some((i, _)) = best_warm {
            return i;
        }
        JoinShortestQueue.route(spec, now_ms, replicas, eligible)
    }
}

/// The built-in routing policies, as a parse/build-friendly enum for CLIs
/// and sweep harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`SloAware`] with default thresholds.
    SloAware,
    /// [`PrefixAffinity`] with the default saturation ceiling.
    PrefixAffinity,
}

impl RouterKind {
    /// Every built-in policy, in sweep order.
    pub const ALL: [RouterKind; 5] = [
        RouterKind::RoundRobin,
        RouterKind::LeastOutstanding,
        RouterKind::JoinShortestQueue,
        RouterKind::SloAware,
        RouterKind::PrefixAffinity,
    ];

    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::JoinShortestQueue => "jsq-load",
            RouterKind::SloAware => "slo-aware",
            RouterKind::PrefixAffinity => "prefix-affinity",
        }
    }

    /// Parses a CLI name (the inverse of [`RouterKind::name`]).
    pub fn parse(name: &str) -> Option<RouterKind> {
        RouterKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            RouterKind::SloAware => Box::new(SloAware::default()),
            RouterKind::PrefixAffinity => Box::new(PrefixAffinity::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::{EngineCore, ServingEngine, StepResult, SystemConfig};
    use workload::Category;

    /// Engine stub: routing only reads core queue state.
    struct Stub {
        core: EngineCore,
    }

    impl ServingEngine for Stub {
        fn name(&self) -> String {
            "stub".into()
        }

        fn core(&self) -> &EngineCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut EngineCore {
            &mut self.core
        }

        fn step(&mut self, _now_ms: f64) -> StepResult {
            StepResult { latency_ms: 1.0 }
        }
    }

    fn spec(id: u64, slo: f64) -> RequestSpec {
        RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: 16,
            output_len: 32,
            tpot_slo_ms: slo,
            ttft_slo_ms: 1_000.0,
            stream_seed: id,
            prefix: None,
        }
    }

    fn replica(id: usize, queued: usize) -> Replica {
        let mut r = Replica::new(
            id,
            Box::new(Stub {
                core: EngineCore::new(SystemConfig::llama70b(1)),
            }),
        );
        for q in 0..queued {
            r.engine.core_mut().on_arrival(spec(q as u64, 150.0));
        }
        r
    }

    #[test]
    fn round_robin_cycles_eligible() {
        let replicas = vec![replica(0, 0), replica(1, 0), replica(2, 0)];
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4)
            .map(|i| rr.route(&spec(i, 50.0), 0.0, &replicas, &[0, 2]))
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_outstanding_picks_emptiest() {
        let replicas = vec![replica(0, 3), replica(1, 1), replica(2, 2)];
        let mut lo = LeastOutstanding;
        assert_eq!(lo.route(&spec(0, 50.0), 0.0, &replicas, &[0, 1, 2]), 1);
        // Restricted eligibility is honoured.
        assert_eq!(lo.route(&spec(0, 50.0), 0.0, &replicas, &[0, 2]), 2);
    }

    #[test]
    fn jsq_accounts_for_clock_head_start() {
        let mut replicas = vec![replica(0, 1), replica(1, 1)];
        // Same queue, but replica 0 is mid-iteration far in the future.
        replicas[0].clock_ms = 10_000.0;
        let mut jsq = JoinShortestQueue;
        assert_eq!(jsq.route(&spec(0, 50.0), 0.0, &replicas, &[0, 1]), 1);
    }

    #[test]
    fn slo_aware_splits_tiers() {
        // Replica 0 idle, replica 1 lightly loaded with loose work.
        let replicas = vec![replica(0, 0), replica(1, 2)];
        let mut sa = SloAware::default();
        // Tight request → least loaded (0).
        assert_eq!(sa.route(&spec(0, 30.0), 0.0, &replicas, &[0, 1]), 0);
        // Loose request → packed onto the busier replica (1), since both
        // carry zero tight requests and 1 is under the ceiling.
        assert_eq!(sa.route(&spec(1, 150.0), 0.0, &replicas, &[0, 1]), 1);
    }

    #[test]
    fn slo_aware_avoids_tight_replicas_when_packing() {
        let mut replicas = vec![replica(0, 0), replica(1, 0)];
        // Replica 1 is busier but serves a tight request.
        replicas[1].engine.core_mut().on_arrival(spec(7, 30.0));
        replicas[1].engine.core_mut().on_arrival(spec(8, 150.0));
        replicas[0].engine.core_mut().on_arrival(spec(9, 150.0));
        let mut sa = SloAware::default();
        assert_eq!(
            sa.route(&spec(1, 150.0), 0.0, &replicas, &[0, 1]),
            0,
            "loose work packs away from the replica holding tight work"
        );
    }

    #[test]
    fn tight_outstanding_sees_inbound_migrations() {
        let mut r = replica(0, 0);
        assert_eq!(r.tight_outstanding(60.0), 0);
        r.inbound.requests = 2;
        r.inbound.decode_tokens = 16;
        r.inbound.tpot_slos = vec![30.0, 150.0];
        assert_eq!(r.tight_outstanding(60.0), 1, "one inbound SLO is tight");
        assert_eq!(r.outstanding(), 2, "inbound requests count as load");
    }

    #[test]
    fn two_phase_pick_respects_ceiling_before_tight_count() {
        // A: 0 tight but over the ceiling; B: 1 tight, lightly loaded;
        // C: 2 tight, nearly idle. A loose request must pack onto B —
        // under-ceiling replicas are considered first, so the fewest-tight
        //-but-saturated A neither wins nor forces the fallback onto C
        // (the replica carrying the most competing tight work).
        let load = |i: usize| [1_500.0, 200.0, 50.0][i];
        let tight = |i: usize| [0usize, 1, 2][i];
        assert_eq!(two_phase_pick(&[0, 1, 2], false, 1_000.0, load, tight), 1);
        // A tight request still goes to the least-loaded replica.
        assert_eq!(two_phase_pick(&[0, 1, 2], true, 1_000.0, load, tight), 2);
        // Everything over the ceiling: fall back to least loaded.
        assert_eq!(two_phase_pick(&[0, 1, 2], false, 10.0, load, tight), 2);
    }

    #[test]
    fn prefix_affinity_prefers_the_warm_replica() {
        let mut cfg = SystemConfig::llama70b(1);
        cfg = cfg.with_prefix_cache(65_536);
        let warm_core = EngineCore::new(cfg);
        let mut replicas = vec![replica(0, 0), replica(1, 0)];
        replicas[1].engine = Box::new(Stub { core: warm_core });

        // Warm replica 1's cache with a request sharing the probe's prefix.
        let mut probe = spec(42, 150.0);
        probe.prefix = Some(workload::PrefixSpec { seed: 9, len: 16 });
        probe.prompt_len = 48;
        replicas[1]
            .engine
            .core_mut()
            .prefix
            .as_mut()
            .unwrap()
            .insert(&probe.prompt_tokens()[..32]);

        let mut pa = PrefixAffinity::default();
        assert_eq!(
            pa.route(&probe, 0.0, &replicas, &[0, 1]),
            1,
            "warm cache attracts the request"
        );
        // A disjoint request degrades to JSQ (lowest index on tie).
        assert_eq!(pa.route(&spec(7, 150.0), 0.0, &replicas, &[0, 1]), 0);
        // A saturated warm replica is treated as cold.
        replicas[1].clock_ms = 10_000.0;
        assert_eq!(
            pa.route(&probe, 0.0, &replicas, &[0, 1]),
            0,
            "affinity never beats a saturated backlog"
        );
    }

    #[test]
    fn router_kind_round_trips_names() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(RouterKind::parse("nope"), None);
    }
}
