//! Request routing policies for the cluster driver.
//!
//! The driver consults the [`Router`] once per arrival, passing the full
//! replica slice plus the indices currently eligible (accepting) — the
//! router must return one of the eligible indices. Policies range from the
//! oblivious (round-robin) to the SLO-aware two-phase split that mirrors,
//! at cluster granularity, the paper's §4.3 budget split between
//! SLO-constrained and throughput-tier requests.

use crate::replica::Replica;
use workload::RequestSpec;

/// A request-routing policy.
///
/// `route` may keep internal state (round-robin's cursor); it must be a
/// deterministic function of that state and its arguments so cluster runs
/// reproduce bit-identically under a fixed seed.
pub trait Router {
    /// Policy name for reports.
    fn name(&self) -> String;

    /// Chooses the replica for `spec`, as an index into `replicas`.
    ///
    /// `eligible` is the non-empty, ascending list of replica indices the
    /// driver will accept; returning anything else is a policy bug (the
    /// driver falls back to the first eligible replica and debug-asserts).
    fn route(
        &mut self,
        spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize;
}

impl std::fmt::Debug for dyn Router + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({})", self.name())
    }
}

/// Cycles through eligible replicas in order, ignoring load entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: u64,
}

impl Router for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(
        &mut self,
        _spec: &RequestSpec,
        _now_ms: f64,
        _replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        let pick = eligible[(self.cursor % eligible.len() as u64) as usize];
        self.cursor += 1;
        pick
    }
}

/// Sends each request to the eligible replica with the fewest outstanding
/// (waiting + running) requests; ties break on the lowest replica id.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastOutstanding;

impl Router for LeastOutstanding {
    fn name(&self) -> String {
        "least-outstanding".into()
    }

    fn route(
        &mut self,
        _spec: &RequestSpec,
        _now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        *eligible
            .iter()
            .min_by_key(|&&i| (replicas[i].outstanding(), i))
            .expect("eligible is non-empty")
    }
}

/// Join-shortest-queue by *modelled load*: minimizes the hardware-normalized
/// drain-time estimate ([`Replica::drain_estimate_ms`]), so a fast replica
/// with a longer queue can still win over a slow one with a shorter queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl Router for JoinShortestQueue {
    fn name(&self) -> String {
        "jsq-load".into()
    }

    fn route(
        &mut self,
        _spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        *eligible
            .iter()
            .min_by(|&&a, &&b| {
                replicas[a]
                    .drain_estimate_ms(now_ms)
                    .total_cmp(&replicas[b].drain_estimate_ms(now_ms))
                    .then(a.cmp(&b))
            })
            .expect("eligible is non-empty")
    }
}

/// The cluster analogue of the paper's §4.3 two-phase budget split.
///
/// Requests whose TPOT SLO is at most `tight_ms` are *SLO-constrained*:
/// they go to the least-loaded eligible replica (by drain estimate, then
/// fewest tight requests) so their decode iterations stay fast.
/// Throughput-tier requests are *packed*: among replicas carrying the
/// fewest tight requests, the most-loaded one still under
/// `pack_ceiling_ms` takes them, concentrating relaxed traffic on few
/// replicas and keeping the rest of the fleet drained for tight arrivals.
#[derive(Debug, Clone, Copy)]
pub struct SloAware {
    /// TPOT SLO (ms) at or below which a request is treated as tight.
    pub tight_ms: f64,
    /// Load ceiling (ms of modelled drain) above which a replica stops
    /// being a packing target for throughput-tier requests.
    pub pack_ceiling_ms: f64,
}

impl SloAware {
    /// Policy with explicit thresholds.
    pub fn new(tight_ms: f64, pack_ceiling_ms: f64) -> Self {
        assert!(tight_ms > 0.0 && pack_ceiling_ms > 0.0);
        Self {
            tight_ms,
            pack_ceiling_ms,
        }
    }
}

impl Default for SloAware {
    /// Defaults sized for the paper's Table 2 mix: 60 ms classifies the
    /// coding-copilot (≈1.2× baseline) and chatbot (50 ms) categories as
    /// tight and summarization (150 ms) as throughput-tier; the 2 s pack
    /// ceiling is roughly the modelled drain of a deeply backlogged
    /// replica.
    fn default() -> Self {
        Self {
            tight_ms: 60.0,
            pack_ceiling_ms: 2_000.0,
        }
    }
}

impl Router for SloAware {
    fn name(&self) -> String {
        "slo-aware".into()
    }

    fn route(
        &mut self,
        spec: &RequestSpec,
        now_ms: f64,
        replicas: &[Replica],
        eligible: &[usize],
    ) -> usize {
        if spec.tpot_slo_ms <= self.tight_ms {
            // Tight tier: least loaded, preferring replicas with the least
            // competing tight work.
            return *eligible
                .iter()
                .min_by(|&&a, &&b| {
                    replicas[a]
                        .drain_estimate_ms(now_ms)
                        .total_cmp(&replicas[b].drain_estimate_ms(now_ms))
                        .then_with(|| {
                            replicas[a]
                                .tight_outstanding(self.tight_ms)
                                .cmp(&replicas[b].tight_outstanding(self.tight_ms))
                        })
                        .then(a.cmp(&b))
                })
                .expect("eligible is non-empty");
        }
        // Throughput tier: pack onto the busiest replica that (a) carries
        // the fewest tight requests and (b) is still under the ceiling.
        let fewest_tight = eligible
            .iter()
            .map(|&i| replicas[i].tight_outstanding(self.tight_ms))
            .min()
            .expect("eligible is non-empty");
        let packable = eligible
            .iter()
            .copied()
            .filter(|&i| {
                replicas[i].tight_outstanding(self.tight_ms) == fewest_tight
                    && replicas[i].drain_estimate_ms(now_ms) <= self.pack_ceiling_ms
            })
            .max_by(|&a, &b| {
                replicas[a]
                    .drain_estimate_ms(now_ms)
                    .total_cmp(&replicas[b].drain_estimate_ms(now_ms))
                    .then(b.cmp(&a)) // prefer the lower id on ties
            });
        packable.unwrap_or_else(|| {
            // Everything is saturated: fall back to least loaded.
            *eligible
                .iter()
                .min_by(|&&a, &&b| {
                    replicas[a]
                        .drain_estimate_ms(now_ms)
                        .total_cmp(&replicas[b].drain_estimate_ms(now_ms))
                        .then(a.cmp(&b))
                })
                .expect("eligible is non-empty")
        })
    }
}

/// The built-in routing policies, as a parse/build-friendly enum for CLIs
/// and sweep harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`SloAware`] with default thresholds.
    SloAware,
}

impl RouterKind {
    /// Every built-in policy, in sweep order.
    pub const ALL: [RouterKind; 4] = [
        RouterKind::RoundRobin,
        RouterKind::LeastOutstanding,
        RouterKind::JoinShortestQueue,
        RouterKind::SloAware,
    ];

    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::JoinShortestQueue => "jsq-load",
            RouterKind::SloAware => "slo-aware",
        }
    }

    /// Parses a CLI name (the inverse of [`RouterKind::name`]).
    pub fn parse(name: &str) -> Option<RouterKind> {
        RouterKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            RouterKind::SloAware => Box::new(SloAware::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::{EngineCore, ServingEngine, StepResult, SystemConfig};
    use workload::Category;

    /// Engine stub: routing only reads core queue state.
    struct Stub {
        core: EngineCore,
    }

    impl ServingEngine for Stub {
        fn name(&self) -> String {
            "stub".into()
        }

        fn core(&self) -> &EngineCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut EngineCore {
            &mut self.core
        }

        fn step(&mut self, _now_ms: f64) -> StepResult {
            StepResult { latency_ms: 1.0 }
        }
    }

    fn spec(id: u64, slo: f64) -> RequestSpec {
        RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: 16,
            output_len: 32,
            tpot_slo_ms: slo,
            stream_seed: id,
        }
    }

    fn replica(id: usize, queued: usize) -> Replica {
        let mut r = Replica::new(
            id,
            Box::new(Stub {
                core: EngineCore::new(SystemConfig::llama70b(1)),
            }),
        );
        for q in 0..queued {
            r.engine.core_mut().on_arrival(spec(q as u64, 150.0));
        }
        r
    }

    #[test]
    fn round_robin_cycles_eligible() {
        let replicas = vec![replica(0, 0), replica(1, 0), replica(2, 0)];
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4)
            .map(|i| rr.route(&spec(i, 50.0), 0.0, &replicas, &[0, 2]))
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_outstanding_picks_emptiest() {
        let replicas = vec![replica(0, 3), replica(1, 1), replica(2, 2)];
        let mut lo = LeastOutstanding;
        assert_eq!(lo.route(&spec(0, 50.0), 0.0, &replicas, &[0, 1, 2]), 1);
        // Restricted eligibility is honoured.
        assert_eq!(lo.route(&spec(0, 50.0), 0.0, &replicas, &[0, 2]), 2);
    }

    #[test]
    fn jsq_accounts_for_clock_head_start() {
        let mut replicas = vec![replica(0, 1), replica(1, 1)];
        // Same queue, but replica 0 is mid-iteration far in the future.
        replicas[0].clock_ms = 10_000.0;
        let mut jsq = JoinShortestQueue;
        assert_eq!(jsq.route(&spec(0, 50.0), 0.0, &replicas, &[0, 1]), 1);
    }

    #[test]
    fn slo_aware_splits_tiers() {
        // Replica 0 idle, replica 1 lightly loaded with loose work.
        let replicas = vec![replica(0, 0), replica(1, 2)];
        let mut sa = SloAware::default();
        // Tight request → least loaded (0).
        assert_eq!(sa.route(&spec(0, 30.0), 0.0, &replicas, &[0, 1]), 0);
        // Loose request → packed onto the busier replica (1), since both
        // carry zero tight requests and 1 is under the ceiling.
        assert_eq!(sa.route(&spec(1, 150.0), 0.0, &replicas, &[0, 1]), 1);
    }

    #[test]
    fn slo_aware_avoids_tight_replicas_when_packing() {
        let mut replicas = vec![replica(0, 0), replica(1, 0)];
        // Replica 1 is busier but serves a tight request.
        replicas[1].engine.core_mut().on_arrival(spec(7, 30.0));
        replicas[1].engine.core_mut().on_arrival(spec(8, 150.0));
        replicas[0].engine.core_mut().on_arrival(spec(9, 150.0));
        let mut sa = SloAware::default();
        assert_eq!(
            sa.route(&spec(1, 150.0), 0.0, &replicas, &[0, 1]),
            0,
            "loose work packs away from the replica holding tight work"
        );
    }

    #[test]
    fn router_kind_round_trips_names() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(RouterKind::parse("nope"), None);
    }
}
