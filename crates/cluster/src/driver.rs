//! The multi-replica discrete-event driver.
//!
//! One global clock orders three event kinds — request arrivals (routed on
//! the spot), elastic-scaling events (replica drain/join) and engine
//! iterations (each replica advances on its own local clock, interleaved
//! in global time order). Completion records from all replicas merge into
//! a single fleet-wide stream for metrics.

use crate::replica::Replica;
use crate::router::Router;
use metrics::telemetry::{EventKind, GaugeSample, Tracer};
use metrics::{ClusterReport, HotLoopStats, RequestRecord, SloReport};
use serving::{
    core_gauges, Deployment, DeploymentEvent, DeploymentStep, ExecMode, FaultKind, Pool,
    ReplicaAddr, RunError, RunOptions, RunResult, ServeSession, ServingEngine, ShardedExecutor,
    UnitStats,
};
use std::sync::Mutex;
use workload::{RequestSpec, Workload};

pub use serving::ScalingAction;

/// A scheduled drain/join of one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingEvent {
    /// Simulation time at which the event applies.
    pub at_ms: f64,
    /// Target replica index.
    pub replica: usize,
    /// Drain or join.
    pub action: ScalingAction,
}

/// Outcome of one replica's share of a cluster run.
#[derive(Debug, Clone)]
pub struct ReplicaResult {
    /// Replica index.
    pub replica: usize,
    /// Requests the router placed on this replica.
    pub routed: u64,
    /// The replica's own run result (records, breakdown, iterations).
    pub result: RunResult,
}

impl ReplicaResult {
    /// Display label, e.g. `"replica-0 (AdaServe)"`.
    pub fn label(&self) -> String {
        format!("replica-{} ({})", self.replica, self.result.engine)
    }
}

/// Outcome of serving one workload on a cluster.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Routing policy name.
    pub router: String,
    /// All completion records, merged across replicas by completion time.
    pub records: Vec<RequestRecord>,
    /// Per-replica results, in replica order.
    pub per_replica: Vec<ReplicaResult>,
    /// Global simulation end time (latest replica clock).
    pub end_ms: f64,
    /// Iterations executed across the fleet.
    pub iterations: u64,
}

impl ClusterRunResult {
    /// Fleet-wide SLO report over the merged records.
    pub fn report(&self) -> SloReport {
        SloReport::from_records(&self.records)
    }

    /// Per-replica + merged reports.
    pub fn cluster_report(&self) -> ClusterReport {
        ClusterReport::from_streams(
            self.per_replica
                .iter()
                .map(|r| (r.label(), r.result.records.clone()))
                .collect(),
        )
    }
}

/// Routing eligibility from per-replica accepting flags: the indices whose
/// flag is set, or every index when none are — a fully draining pool
/// degrades to routing anywhere rather than dropping requests. Shared by
/// the colocated driver and the disaggregated pools.
pub fn accepting_or_all(flags: impl Iterator<Item = bool>) -> Vec<usize> {
    let flags: Vec<bool> = flags.collect();
    let accepting: Vec<usize> = flags
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .map(|(i, _)| i)
        .collect();
    if accepting.is_empty() {
        (0..flags.len()).collect()
    } else {
        accepting
    }
}

/// The slowest near-zero-load decode latency across a prospective fleet.
///
/// Heterogeneous fleets should build their workload against this value so
/// baseline-relative SLOs stay attainable on every replica; callable on
/// the engine list before the [`Cluster`] is assembled.
pub fn max_baseline_ms(engines: &[Box<dyn ServingEngine>]) -> f64 {
    engines
        .iter()
        .map(|e| e.core().config.baseline_ms)
        .fold(0.0, f64::max)
}

/// N serving engines behind a routing policy, driven under one clock.
///
/// A `Cluster` implements [`Deployment`], so the standard way to run it
/// is through a [`ServeSession`] (open-loop or online); the legacy
/// [`Cluster::run`] remains as a deprecated, output-equivalent shim.
#[derive(Debug)]
pub struct Cluster {
    replicas: Vec<Replica>,
    router: Box<dyn Router>,
    events: Vec<ScalingEvent>,
    /// Driver-level [`ExecMode`] override; when unset,
    /// [`RunOptions::exec`] (i.e. the session's mode) applies. Output is
    /// record-identical across modes — see [`serving::exec`].
    exec_override: Option<ExecMode>,
    /// The persistent worker pool behind [`ExecMode::Sharded`], created
    /// lazily on the first multi-worker batch and reused for every batch
    /// of every `serve()` call on this cluster.
    pool: Option<ShardedExecutor>,
    /// Fleet-shared trace sink for routing decisions; each replica holds
    /// a clone of the same log for its iteration events.
    tracer: Tracer,
}

impl Cluster {
    /// Builds a cluster over `engines` (any mix of engine types and GPU
    /// profiles) with the given routing policy.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn new(engines: Vec<Box<dyn ServingEngine>>, router: Box<dyn Router>) -> Self {
        assert!(!engines.is_empty(), "a cluster needs at least one replica");
        let replicas = engines
            .into_iter()
            .enumerate()
            .map(|(id, engine)| Replica::new(id, engine))
            .collect();
        Self {
            replicas,
            router,
            events: Vec::new(),
            exec_override: None,
            pool: None,
            tracer: Tracer::off(),
        }
    }

    /// Pins how this cluster executes batched replica stepping,
    /// overriding the session-level [`RunOptions::exec`] (see
    /// [`serving::exec::ExecMode`]). Output is record-identical across
    /// modes (pinned by `tests/output_equivalence.rs` and the cluster
    /// proptests); only the interleaving of surfaced lifecycle events
    /// differs.
    #[must_use]
    pub fn with_exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec_override = Some(exec);
        self
    }

    /// Enables/disables parallel replica stepping.
    ///
    /// # Deprecated
    ///
    /// This maps to [`Cluster::with_exec_mode`] with
    /// [`ExecMode::Sharded`] / [`ExecMode::Sequential`]:
    ///
    /// ```
    /// use cluster::Cluster;
    /// use serving::ExecMode;
    ///
    /// // before: cluster.with_parallel_stepping(parallel)
    /// fn migrated(cluster: Cluster, parallel: bool) -> Cluster {
    ///     cluster.with_exec_mode(if parallel {
    ///         ExecMode::Sharded { workers: None }
    ///     } else {
    ///         ExecMode::Sequential
    ///     })
    /// }
    /// ```
    ///
    /// Note that the thread-per-step design this flag used to toggle
    /// *lost* to sequential stepping at small fleets (4 replicas: 290 ms
    /// vs 268 ms wall in the historical `BENCH_perf.json`) — the
    /// persistent sharded executor behind `ExecMode` is what makes
    /// batched stepping win; see the refreshed artifact and
    /// `BENCH_fleet_scaling.json` for the measured crossover.
    #[deprecated(note = "use `with_exec_mode(ExecMode::…)` instead")]
    #[must_use]
    pub fn with_parallel_stepping(self, parallel: bool) -> Self {
        self.with_exec_mode(if parallel {
            ExecMode::Sharded { workers: None }
        } else {
            ExecMode::Sequential
        })
    }

    /// Worker threads held by the persistent stepping pool (0 until a
    /// multi-worker sharded batch has run). Exposed so tests can assert
    /// the pool is reused across `serve()` calls rather than leaked.
    pub fn worker_pool_size(&self) -> usize {
        self.pool.as_ref().map_or(0, ShardedExecutor::workers)
    }

    /// Schedules elastic-scaling (drain/join) events.
    ///
    /// # Panics
    ///
    /// Panics if an event names a replica outside the cluster.
    pub fn with_events(mut self, mut events: Vec<ScalingEvent>) -> Self {
        for e in &events {
            assert!(e.replica < self.replicas.len(), "event names no replica");
        }
        events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        self.events = events;
        self
    }

    /// Read-only view of the replicas (for tests and inspection).
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The slowest replica's baseline decode latency.
    ///
    /// Heterogeneous fleets should build their workload against this value
    /// so baseline-relative SLOs stay attainable on every replica.
    pub fn max_baseline_ms(&self) -> f64 {
        self.replicas
            .iter()
            .map(Replica::baseline_ms)
            .fold(0.0, f64::max)
    }

    /// Serves `workload` to completion across the fleet.
    ///
    /// # Deprecated
    ///
    /// This is now a thin shim over the unified front door — a
    /// [`ServeSession`] driving this cluster as a [`Deployment`] — which
    /// additionally supports mid-run submission and scaling. Output is
    /// equivalent (see `tests/output_equivalence.rs`). Migrate by
    /// wrapping the same cluster; scheduled [`Cluster::with_events`]
    /// scaling becomes `scale_at` calls on the session's timeline:
    ///
    /// ```
    /// use cluster::{Cluster, ScalingEvent};
    /// use serving::{ReplicaAddr, RunError, RunOptions, RunReport, ServeSession};
    /// use workload::Workload;
    ///
    /// // before: cluster.with_events(events).run(workload, options)?
    /// fn migrated(
    ///     cluster: Cluster,
    ///     events: Vec<ScalingEvent>,
    ///     workload: &Workload,
    ///     options: RunOptions,
    /// ) -> Result<RunReport, RunError> {
    ///     let mut session = ServeSession::with_options(cluster, options);
    ///     for e in events {
    ///         session.scale_at(e.at_ms, ReplicaAddr::serving(e.replica), e.action);
    ///     }
    ///     session.serve(workload)
    /// }
    /// ```
    #[deprecated(note = "drive a `serving::ServeSession` over this `Cluster` instead")]
    pub fn run(
        mut self,
        workload: &Workload,
        options: RunOptions,
    ) -> Result<ClusterRunResult, RunError> {
        let events = std::mem::take(&mut self.events);
        let router = self.router.name();
        let mut session = ServeSession::with_options(self, options).admission_control(false);
        for e in events {
            session.scale_at(e.at_ms, ReplicaAddr::serving(e.replica), e.action);
        }
        let report = session.serve(workload)?;
        Ok(ClusterRunResult {
            router,
            records: report.records,
            per_replica: report
                .units
                .into_iter()
                .map(|u| ReplicaResult {
                    replica: u.replica.index,
                    routed: u.routed,
                    result: u.result,
                })
                .collect(),
            end_ms: report.end_ms,
            iterations: report.iterations,
        })
    }

    /// The earliest replica ready to iterate (lowest clock, then id).
    /// Down replicas are frozen: they hold no work and step again only
    /// once the session clears their crash.
    fn next_stepper(&self) -> Option<(f64, usize)> {
        self.replicas
            .iter()
            .filter(|r| r.has_work() && !r.down)
            .min_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms).then(a.id.cmp(&b.id)))
            .map(|r| (r.clock_ms, r.id))
    }
}

/// One replica's share of a sharded stepping batch: exclusive access to
/// the replica plus a private event buffer and result slot, merged in
/// replica-index order once the batch completes.
struct StepTask<'a> {
    id: usize,
    replica: &'a mut Replica,
    events: Vec<DeploymentEvent>,
    result: Result<(), RunError>,
}

impl Deployment for Cluster {
    /// The routing policy's name (the label legacy cluster results carried).
    fn name(&self) -> String {
        self.router.name()
    }

    fn max_baseline_ms(&self) -> f64 {
        Cluster::max_baseline_ms(self)
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.engine.core().kv_capacity_tokens())
            .min()
            .expect("a cluster has at least one replica")
    }

    /// The longest cached prefix across *all* replicas: routing (e.g. the
    /// `prefix-affinity` policy) can steer the request to whichever
    /// replica holds it.
    fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u32 {
        if self
            .replicas
            .iter()
            .all(|r| r.engine.core().prefix.is_none())
        {
            return 0;
        }
        let prompt = spec.prompt_tokens();
        self.replicas
            .iter()
            .map(|r| r.cached_prefix_tokens(spec, &prompt))
            .max()
            .unwrap_or(0)
    }

    /// Routes the arrival at its arrival instant against each replica's
    /// current queue state; a replica mid-iteration past that instant
    /// reflects at most one extra iteration of skew — the same
    /// information a real router has when an engine's batch is already on
    /// the GPU.
    fn submit(&mut self, spec: RequestSpec, now_ms: f64) {
        let eligible = accepting_or_all(self.replicas.iter().map(|r| r.accepting && !r.down));
        let mut choice = self.router.route(&spec, now_ms, &self.replicas, &eligible);
        if !eligible.contains(&choice) {
            debug_assert!(false, "router returned ineligible replica {choice}");
            choice = eligible[0];
        }
        if self.tracer.enabled() {
            self.tracer.record(
                now_ms,
                EventKind::RouteDecision {
                    id: spec.id,
                    router: self.router.name(),
                    replica: serving::trace_replica(ReplicaAddr::serving(choice)),
                    modeled_load_ms: self.replicas[choice].drain_estimate_ms(now_ms),
                },
            );
        }
        let r = &mut self.replicas[choice];
        r.engine.core_mut().on_arrival(spec);
        r.clock_ms = r.clock_ms.max(now_ms);
        r.routed += 1;
    }

    fn next_event_ms(&self) -> Option<f64> {
        self.next_stepper().map(|(t, _)| t)
    }

    fn step(&mut self, options: &RunOptions) -> Result<DeploymentStep, RunError> {
        let Some((_, id)) = self.next_stepper() else {
            return Ok(DeploymentStep::default());
        };
        let mut events = Vec::new();
        let latency_ms =
            self.replicas[id].step_checked(ReplicaAddr::serving(id), options, &mut events)?;
        Ok(DeploymentStep {
            events,
            latency_ms: Some(latency_ms),
            replica: Some(ReplicaAddr::serving(id)),
        })
    }

    /// Sharded batch stepping: replicas never interact between the
    /// session's external events, so every replica due before
    /// `horizon_ms` advances to the horizon independently — distributed
    /// over the persistent [`ShardedExecutor`] (or inline on the caller
    /// when one worker suffices) — and results merge in replica-index
    /// order: deterministic regardless of thread scheduling, and
    /// record-identical to sequential stepping.
    fn step_until(
        &mut self,
        horizon_ms: f64,
        options: &RunOptions,
    ) -> Result<DeploymentStep, RunError> {
        let mode = self.exec_override.unwrap_or(options.exec);
        let due = self
            .replicas
            .iter()
            .filter(|r| r.has_work() && !r.down && r.clock_ms < horizon_ms)
            .count();
        if mode == ExecMode::Sequential || due <= 1 {
            return self.step(options);
        }
        let mut tasks: Vec<Mutex<StepTask<'_>>> = self
            .replicas
            .iter_mut()
            .enumerate()
            .filter(|(_, r)| r.has_work() && !r.down && r.clock_ms < horizon_ms)
            .map(|(id, replica)| {
                Mutex::new(StepTask {
                    id,
                    replica,
                    events: Vec::new(),
                    result: Ok(()),
                })
            })
            .collect();
        let run_one = |i: usize| {
            // Uncontended: shard claiming hands each index to exactly one
            // worker; the mutex only makes that exclusivity checkable.
            let mut task = tasks[i].lock().expect("step task");
            let task = &mut *task;
            task.result = task.replica.run_until(
                ReplicaAddr::serving(task.id),
                horizon_ms,
                options,
                &mut task.events,
            );
        };
        let workers = mode.effective_workers();
        if workers <= 1 {
            for i in 0..tasks.len() {
                run_one(i);
            }
        } else {
            if self.pool.as_ref().is_some_and(|p| p.workers() != workers) {
                self.pool = None;
            }
            self.pool
                .get_or_insert_with(|| ShardedExecutor::new(workers))
                .run(tasks.len(), run_one);
        }
        let mut events = Vec::new();
        for task in tasks.drain(..) {
            let task = task.into_inner().expect("step task");
            task.result?;
            events.extend(task.events);
        }
        // Progress is guarded per replica inside `run_until` (stall
        // detection and caps); the batch itself reports no latency.
        Ok(DeploymentStep {
            events,
            latency_ms: None,
            replica: None,
        })
    }

    fn set_accepting(&mut self, replica: ReplicaAddr, accepting: bool, now_ms: f64) {
        assert_eq!(
            replica.pool,
            Pool::Decode,
            "clusters have one (decode) pool"
        );
        let r = &mut self.replicas[replica.index];
        r.accepting = accepting;
        r.clock_ms = r.clock_ms.max(now_ms);
    }

    fn inject_fault(&mut self, fault: &FaultKind, now_ms: f64) -> Vec<RequestSpec> {
        // A serving replica the plan names but the fleet lacks is a no-op:
        // seeded plans are sized to the fleet, hand-built ones may not be.
        let target = |addr: &ReplicaAddr| {
            (addr.pool == Pool::Decode && addr.index < self.replicas.len()).then_some(addr.index)
        };
        match fault {
            FaultKind::ReplicaCrash { replica, .. } => target(replica)
                .map(|i| self.replicas[i].crash(now_ms))
                .unwrap_or_default(),
            FaultKind::SlowReplica {
                replica, factor, ..
            } => {
                if let Some(i) = target(replica) {
                    self.replicas[i].latency_factor = *factor;
                }
                Vec::new()
            }
            // No KV interconnect in a colocated-replica fleet.
            FaultKind::LinkDegrade { .. } | FaultKind::LinkOutage { .. } => Vec::new(),
        }
    }

    fn clear_fault(&mut self, fault: &FaultKind, now_ms: f64) {
        let target = |addr: &ReplicaAddr| {
            (addr.pool == Pool::Decode && addr.index < self.replicas.len()).then_some(addr.index)
        };
        match fault {
            FaultKind::ReplicaCrash { replica, .. } => {
                if let Some(i) = target(replica) {
                    self.replicas[i].recover(now_ms);
                }
            }
            FaultKind::SlowReplica { replica, .. } => {
                if let Some(i) = target(replica) {
                    self.replicas[i].latency_factor = 1.0;
                }
            }
            FaultKind::LinkDegrade { .. } | FaultKind::LinkOutage { .. } => {}
        }
    }

    fn set_degraded(&mut self, degraded: bool) {
        for r in &mut self.replicas {
            r.engine.core_mut().degraded = degraded;
        }
    }

    fn iterations(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.engine.core().iterations)
            .sum()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        for r in &mut self.replicas {
            r.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Fleet gauges: queue depth and in-flight sum across replicas, KV
    /// occupancy reports the worst (fullest) replica, and the cache hit
    /// rate pools the per-replica lookup/hit counters.
    fn gauges(&self) -> GaugeSample {
        let mut sample = GaugeSample::default();
        let mut hot = HotLoopStats::default();
        for r in &self.replicas {
            let core = r.engine.core();
            let g = core_gauges(core);
            sample.queue_depth += g.queue_depth;
            sample.in_flight += g.in_flight;
            sample.kv_occupancy_pct = sample.kv_occupancy_pct.max(g.kv_occupancy_pct);
            hot.merge(&core.hotloop);
        }
        sample.cache_hit_rate_pct = hot.prefix_hit_rate_pct();
        sample
    }

    fn clock_ms(&self) -> f64 {
        self.replicas.iter().map(|r| r.clock_ms).fold(0.0, f64::max)
    }

    fn drain(&mut self) -> Result<Vec<UnitStats>, RunError> {
        Ok(self
            .replicas
            .iter_mut()
            .map(|r| UnitStats {
                replica: ReplicaAddr::serving(r.id),
                routed: r.routed,
                result: r.finalize(),
                prefilled_requests: 0,
                prefill_tokens: 0,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{LeastOutstanding, RoundRobin, RouterKind};
    use serving::{Colocated, EngineCore, RunErrorKind, RunReport, StepResult, SystemConfig};
    use workload::{Category, RequestSpec};

    /// Minimal engine: admits FIFO, prefills whole prompts, decodes one
    /// token per running request per iteration (same as serving's own
    /// driver test engine).
    struct NaiveEngine {
        core: EngineCore,
    }

    impl NaiveEngine {
        fn boxed(seed: u64) -> Box<dyn ServingEngine> {
            Box::new(Self {
                core: EngineCore::new(SystemConfig::llama70b(seed)),
            })
        }
    }

    impl ServingEngine for NaiveEngine {
        fn name(&self) -> String {
            "naive".into()
        }

        fn core(&self) -> &EngineCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut EngineCore {
            &mut self.core
        }

        fn step(&mut self, now_ms: f64) -> StepResult {
            self.core.admit_fifo();
            let plan = self.core.plan_prefill(u32::MAX);
            if !plan.is_empty() {
                let mut pass = roofline::ForwardPass::default();
                for &(i, chunk) in &plan {
                    pass.push(roofline::SeqWork::prefill(
                        chunk,
                        self.core.running[i].prefilled(),
                    ));
                }
                self.core.apply_prefill(&plan);
                let ms = self
                    .core
                    .config
                    .testbed
                    .target
                    .forward_latency_ms(&pass, false);
                self.core.stamp_decode_starts(now_ms + ms);
                return StepResult { latency_ms: ms };
            }
            let decoding = self.core.decoding_indices();
            if decoding.is_empty() {
                return StepResult { latency_ms: 1.0 };
            }
            let mut pass = roofline::ForwardPass::default();
            for &i in &decoding {
                pass.push(roofline::SeqWork::decode(
                    self.core.running[i].context_len(),
                ));
            }
            let ms = self
                .core
                .config
                .testbed
                .target
                .forward_latency_ms(&pass, true);
            for &i in &decoding {
                if self.core.grow_with_preemption(i, 1) {
                    let t = self.core.next_token(i);
                    self.core.running[i].push_token(t);
                    self.core.running[i].verify_steps += 1;
                }
            }
            self.core.collect_finished(now_ms + ms);
            StepResult { latency_ms: ms }
        }
    }

    fn tiny_workload(n: u64, gap_ms: f64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: id as f64 * gap_ms,
                prompt_len: 12,
                output_len: 6,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x5151,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "tiny".into(),
        }
    }

    fn naive_cluster(n: usize, router: Box<dyn Router>) -> Cluster {
        Cluster::new((0..n).map(|_| NaiveEngine::boxed(3)).collect(), router)
    }

    /// Front-door drive of a cluster with a scaling timeline.
    fn serve_cluster(
        cluster: Cluster,
        events: Vec<ScalingEvent>,
        workload: &Workload,
        options: RunOptions,
    ) -> Result<RunReport, RunError> {
        let mut session = ServeSession::with_options(cluster, options);
        for e in events {
            session.scale_at(e.at_ms, ReplicaAddr::serving(e.replica), e.action);
        }
        session.serve(workload)
    }

    #[test]
    fn cluster_serves_every_request_exactly_once() {
        let wl = tiny_workload(12, 5.0);
        let result = serve_cluster(
            naive_cluster(3, Box::new(RoundRobin::default())),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .expect("run succeeds");
        assert_eq!(result.records.len(), 12, "conservation across replicas");
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "no record duplicated in the merge");
        let routed: u64 = result.units.iter().map(|u| u.routed).sum();
        assert_eq!(routed, 12);
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let wl = tiny_workload(9, 100.0);
        let result = serve_cluster(
            naive_cluster(3, Box::new(RoundRobin::default())),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        for u in &result.units {
            assert_eq!(u.routed, 3, "replica {} share", u.replica.index);
        }
    }

    #[test]
    fn merged_records_are_sorted_by_completion() {
        let wl = tiny_workload(10, 7.0);
        let result = serve_cluster(
            naive_cluster(2, Box::new(LeastOutstanding)),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        for pair in result.records.windows(2) {
            assert!(pair[0].completion_ms <= pair[1].completion_ms);
        }
        assert!(result.end_ms >= result.records.last().unwrap().completion_ms);
    }

    #[test]
    fn every_router_kind_drives_a_cluster() {
        let wl = tiny_workload(8, 10.0);
        for kind in RouterKind::ALL {
            let result = serve_cluster(
                naive_cluster(2, kind.build()),
                Vec::new(),
                &wl,
                RunOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
            assert_eq!(result.records.len(), 8, "{}", kind.name());
            assert_eq!(result.deployment, kind.name());
        }
    }

    #[test]
    fn drained_replica_receives_no_new_requests() {
        let wl = tiny_workload(8, 50.0);
        let result = serve_cluster(
            naive_cluster(2, Box::new(RoundRobin::default())),
            vec![ScalingEvent {
                at_ms: -1.0,
                replica: 1,
                action: ScalingAction::Drain,
            }],
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(result.units[0].routed, 8);
        assert_eq!(result.units[1].routed, 0);
        assert_eq!(result.records.len(), 8, "drain loses nothing");
    }

    #[test]
    fn joined_replica_starts_taking_traffic() {
        let wl = tiny_workload(10, 50.0);
        let result = serve_cluster(
            naive_cluster(2, Box::new(RoundRobin::default())),
            vec![
                ScalingEvent {
                    at_ms: -1.0,
                    replica: 1,
                    action: ScalingAction::Drain,
                },
                ScalingEvent {
                    at_ms: 240.0, // before the 6th arrival at 250 ms
                    replica: 1,
                    action: ScalingAction::Join,
                },
            ],
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(result.records.len(), 10);
        assert!(
            result.units[1].routed > 0,
            "replica 1 serves traffic after joining"
        );
        assert!(result.units[0].routed > result.units[1].routed);
    }

    #[test]
    fn fully_draining_fleet_still_serves() {
        let wl = tiny_workload(4, 20.0);
        let result = serve_cluster(
            naive_cluster(2, Box::new(RoundRobin::default())),
            vec![
                ScalingEvent {
                    at_ms: -1.0,
                    replica: 0,
                    action: ScalingAction::Drain,
                },
                ScalingEvent {
                    at_ms: -1.0,
                    replica: 1,
                    action: ScalingAction::Drain,
                },
            ],
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(result.records.len(), 4, "degrades to routing anywhere");
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let wl = tiny_workload(10, 8.0);
        let a = serve_cluster(
            naive_cluster(3, RouterKind::SloAware.build()),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let b = serve_cluster(
            naive_cluster(3, RouterKind::SloAware.build()),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.end_ms, b.end_ms);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn single_replica_cluster_matches_plain_driver() {
        let wl = tiny_workload(6, 10.0);
        let cluster = serve_cluster(
            naive_cluster(1, Box::new(RoundRobin::default())),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        let plain = ServeSession::new(Colocated::new(NaiveEngine::boxed(3)))
            .serve(&wl)
            .unwrap();
        assert_eq!(cluster.records, plain.records);
    }

    #[test]
    fn mid_run_submission_is_served() {
        // The online capability the batch `run(&workload)` signature could
        // not express: a request submitted from the client hook while the
        // run is in flight.
        let wl = tiny_workload(4, 30.0);
        let mut session = ServeSession::new(naive_cluster(2, Box::new(RoundRobin::default())));
        let mut injected = false;
        session.enqueue(&wl);
        let report = session
            .serve_online(|event, handle| {
                if !injected {
                    if let serving::DeploymentEvent::Finished { record } = event {
                        injected = true;
                        handle.submit(RequestSpec {
                            id: 1000 + record.id,
                            category: Category::Chatbot,
                            arrival_ms: handle.now_ms() + 5.0,
                            prompt_len: 12,
                            output_len: 6,
                            tpot_slo_ms: 50.0,
                            ttft_slo_ms: 1_000.0,
                            stream_seed: 0xAB,
                            prefix: None,
                        });
                    }
                }
            })
            .unwrap();
        assert!(injected, "a request finished mid-run");
        assert_eq!(report.records.len(), 5, "follow-up served too");
        assert!(report.records.iter().any(|r| r.id >= 1000));
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let wl = tiny_workload(6, 1.0);
        let err = serve_cluster(
            naive_cluster(2, Box::new(RoundRobin::default())),
            Vec::new(),
            &wl,
            RunOptions {
                max_sim_ms: f64::MAX,
                max_iterations: 1,
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::IterationCap);
        assert_eq!(err.site().pool, Some(Pool::Decode));
        assert!(err.site().replica.is_some(), "cap names the replica");
    }

    #[test]
    fn empty_workload_is_a_no_op() {
        let wl = Workload {
            requests: Vec::new(),
            description: "empty".into(),
        };
        let result = serve_cluster(
            naive_cluster(2, Box::new(RoundRobin::default())),
            Vec::new(),
            &wl,
            RunOptions::default(),
        )
        .unwrap();
        assert!(result.records.is_empty());
        assert_eq!(result.end_ms, 0.0);
    }
}
