//! Small statistics helpers.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = rank - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_p() {
        let _ = percentile(&[1.0], 150.0);
    }
}
