//! Latency breakdown accumulation (paper Fig. 15).
//!
//! AdaServe's scheduling (token selection) runs on the CPU while speculation
//! and verification occupy the GPU; the paper shows the CPU share is
//! negligible (0.31–0.41%). In this reproduction the GPU phases are charged
//! by the roofline model while the scheduler is *real* Rust code measured
//! with a wall-clock timer — making this figure a genuine measurement of the
//! reimplemented algorithm's overhead. Disaggregated deployments add a
//! fifth component: KV-page migration time over the interconnect.

/// Accumulated time per pipeline component, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// CPU time spent in scheduling / token selection (measured wall-clock).
    pub scheduling_ms: f64,
    /// Modelled GPU time in draft-model speculation passes.
    pub speculation_ms: f64,
    /// Modelled GPU time in target-model verification/decode passes.
    pub verification_ms: f64,
    /// Modelled GPU time in prefill passes.
    pub prefill_ms: f64,
    /// Modelled interconnect time migrating KV pages from prefill to
    /// decode replicas (zero outside disaggregated deployments).
    pub kv_transfer_ms: f64,
}

impl LatencyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accounted time.
    pub fn total_ms(&self) -> f64 {
        self.scheduling_ms
            + self.speculation_ms
            + self.verification_ms
            + self.prefill_ms
            + self.kv_transfer_ms
    }

    /// Percentage shares
    /// `(scheduling, speculation, verification, prefill, kv_transfer)`.
    pub fn shares_pct(&self) -> (f64, f64, f64, f64, f64) {
        let t = self.total_ms();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        (
            100.0 * self.scheduling_ms / t,
            100.0 * self.speculation_ms / t,
            100.0 * self.verification_ms / t,
            100.0 * self.prefill_ms / t,
            100.0 * self.kv_transfer_ms / t,
        )
    }

    /// Adds another breakdown's components.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.scheduling_ms += other.scheduling_ms;
        self.speculation_ms += other.speculation_ms;
        self.verification_ms += other.verification_ms;
        self.prefill_ms += other.prefill_ms;
        self.kv_transfer_ms += other.kv_transfer_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_100() {
        let b = LatencyBreakdown {
            scheduling_ms: 1.0,
            speculation_ms: 20.0,
            verification_ms: 60.0,
            prefill_ms: 9.0,
            kv_transfer_ms: 10.0,
        };
        let (s, sp, v, p, k) = b.shares_pct();
        assert!((s + sp + v + p + k - 100.0).abs() < 1e-9);
        assert!((s - 1.0).abs() < 1e-9);
        assert!((k - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        assert_eq!(
            LatencyBreakdown::new().shares_pct(),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyBreakdown::new();
        let b = LatencyBreakdown {
            scheduling_ms: 1.0,
            speculation_ms: 2.0,
            verification_ms: 3.0,
            prefill_ms: 4.0,
            kv_transfer_ms: 5.0,
        };
        a.merge(&b);
        a.merge(&b);
        assert!((a.total_ms() - 30.0).abs() < 1e-9);
        assert!((a.kv_transfer_ms - 10.0).abs() < 1e-9);
    }
}
