//! Plain-text table and CSV formatting for experiment output.
//!
//! The bench binaries print the same rows/series the paper's figures plot;
//! this hand-rolled formatter avoids extra dependencies.

use std::fmt::Write as _;

/// A simple column-aligned table with an optional CSV rendering.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", c, width = widths[i] + 2);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for bench output).
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["much-longer-name", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("much-longer-name"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(12.3456, 2), "12.35");
    }
}
