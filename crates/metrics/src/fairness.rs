//! Per-tenant fairness reporting: attainment spread across tenants.
//!
//! Multi-tenant serving is fair when every tenant's SLO attainment sits
//! close to the fleet-wide number — a large *spread* (best minus worst
//! tenant) means one tenant's burst starved another, even if the pooled
//! attainment looks healthy. The scenario engine tags each request with
//! its tenant; this module slices a run's records along that tag.

use crate::record::RequestRecord;

/// One tenant's slice of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlice {
    /// Tenant index (position in the scenario's tenant list).
    pub tenant: usize,
    /// Completed requests attributed to the tenant.
    pub requests: usize,
    /// Completed requests that met **both** their TPOT and TTFT SLOs.
    pub attained: usize,
    /// Requests refused at the front door (quota or capacity).
    pub rejected: usize,
}

impl TenantSlice {
    /// Joint (TPOT ∧ TTFT) SLO attainment over completed requests, in
    /// percent; 100 when the tenant completed nothing.
    pub fn attainment_pct(&self) -> f64 {
        if self.requests == 0 {
            100.0
        } else {
            self.attained as f64 / self.requests as f64 * 100.0
        }
    }
}

/// Attainment sliced per tenant, with the spread the fairness gates hold.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Per-tenant slices, in tenant order (every tenant appears, even
    /// with zero requests).
    pub tenants: Vec<TenantSlice>,
}

impl FairnessReport {
    /// Slices `records` by tenant. `tenant_of` maps a request id to its
    /// tenant index (ids unknown to the scenario should map into
    /// `0..n_tenants` deterministically); `rejected_ids` lists the
    /// front-door refusals so conservation per tenant stays visible.
    pub fn from_records(
        records: &[RequestRecord],
        n_tenants: usize,
        rejected_ids: &[u64],
        mut tenant_of: impl FnMut(u64) -> usize,
    ) -> Self {
        assert!(n_tenants > 0, "at least one tenant");
        let mut tenants: Vec<TenantSlice> = (0..n_tenants)
            .map(|tenant| TenantSlice {
                tenant,
                requests: 0,
                attained: 0,
                rejected: 0,
            })
            .collect();
        for r in records {
            let t = tenant_of(r.id).min(n_tenants - 1);
            tenants[t].requests += 1;
            if r.attained() && r.ttft_attained() {
                tenants[t].attained += 1;
            }
        }
        for &id in rejected_ids {
            let t = tenant_of(id).min(n_tenants - 1);
            tenants[t].rejected += 1;
        }
        Self { tenants }
    }

    /// Best minus worst per-tenant attainment, in percentage points,
    /// over tenants that completed at least one request. Zero for a
    /// single-tenant (or empty) run.
    pub fn spread_pct(&self) -> f64 {
        let active: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| t.requests > 0)
            .map(TenantSlice::attainment_pct)
            .collect();
        match (
            active.iter().cloned().reduce(f64::min),
            active.iter().cloned().reduce(f64::max),
        ) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0.0,
        }
    }

    /// The lowest per-tenant attainment, in percent (100 when no tenant
    /// completed anything) — the number a per-tenant SLO contract holds.
    pub fn worst_attainment_pct(&self) -> f64 {
        self.tenants
            .iter()
            .filter(|t| t.requests > 0)
            .map(TenantSlice::attainment_pct)
            .reduce(f64::min)
            .unwrap_or(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Category;

    fn record(id: u64, tpot_ms: f64, slo_ms: f64) -> RequestRecord {
        RequestRecord {
            id,
            category: Category::Chatbot,
            tpot_slo_ms: slo_ms,
            ttft_slo_ms: 1e9,
            arrival_ms: 0.0,
            decode_start_ms: 1.0,
            completion_ms: 1.0 + tpot_ms * 10.0,
            output_tokens: 10,
            accepted_tokens: 0,
            verify_steps: 10,
            preemptions: 0,
        }
    }

    #[test]
    fn slices_and_spread() {
        // Tenant 0: 2/2 attained; tenant 1: 1/2 attained.
        let records = vec![
            record(0, 10.0, 50.0),
            record(2, 10.0, 50.0),
            record(1, 10.0, 50.0),
            record(3, 90.0, 50.0),
        ];
        let fr = FairnessReport::from_records(&records, 2, &[5], |id| (id % 2) as usize);
        assert_eq!(fr.tenants[0].requests, 2);
        assert_eq!(fr.tenants[0].attained, 2);
        assert_eq!(fr.tenants[1].attained, 1);
        assert_eq!(fr.tenants[1].rejected, 1);
        assert!((fr.spread_pct() - 50.0).abs() < 1e-9);
        assert!((fr.worst_attainment_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_tenant_have_zero_spread() {
        let fr = FairnessReport::from_records(&[], 3, &[], |_| 0);
        assert_eq!(fr.tenants.len(), 3);
        assert_eq!(fr.spread_pct(), 0.0);
        assert_eq!(fr.worst_attainment_pct(), 100.0);
        let one = FairnessReport::from_records(&[record(0, 1.0, 50.0)], 1, &[], |_| 0);
        assert_eq!(one.spread_pct(), 0.0);
    }

    #[test]
    fn out_of_range_tenants_clamp() {
        let fr = FairnessReport::from_records(&[record(9, 1.0, 50.0)], 2, &[], |_| 7);
        assert_eq!(fr.tenants[1].requests, 1);
    }
}
