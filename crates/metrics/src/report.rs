//! Aggregated SLO reports (attainment, goodput, per-category detail).

use crate::hotloop::HotLoopStats;
use crate::record::RequestRecord;
use crate::stats::{mean, percentile};
use workload::Category;

/// Per-category aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryReport {
    /// The category.
    pub category: Category,
    /// Completed requests.
    pub requests: usize,
    /// Requests that met their TPOT SLO.
    pub attained: usize,
    /// Mean of per-request average TPOT (ms).
    pub mean_tpot_ms: f64,
    /// p99 of per-request average TPOT (ms).
    pub p99_tpot_ms: f64,
    /// Violation rate in percent.
    pub violation_pct: f64,
}

/// A full report over one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Completed requests.
    pub requests: usize,
    /// Requests that met their SLO.
    pub attained: usize,
    /// SLO attainment in percent (the paper's headline metric).
    pub attainment_pct: f64,
    /// Goodput: output tokens of attained requests / makespan (tokens/s).
    pub goodput_tps: f64,
    /// Throughput: all output tokens / makespan (tokens/s).
    pub throughput_tps: f64,
    /// Wall-clock span of the run in milliseconds.
    pub makespan_ms: f64,
    /// Mean accepted speculated tokens per verification step (Fig. 12).
    pub mean_accepted_per_verify: f64,
    /// Mean TTFT (ms).
    pub mean_ttft_ms: f64,
    /// Median TTFT (ms).
    pub p50_ttft_ms: f64,
    /// p99 TTFT (ms).
    pub p99_ttft_ms: f64,
    /// TTFT SLO attainment in percent (the disaggregation study's headline
    /// metric; the TPOT criterion above is the paper's).
    pub ttft_attainment_pct: f64,
    /// Median of per-request average TPOT (ms).
    pub p50_tpot_ms: f64,
    /// p99 of per-request average TPOT (ms).
    pub p99_tpot_ms: f64,
    /// Per-category breakdown, in Table 2 order (empty categories omitted).
    pub per_category: Vec<CategoryReport>,
    /// Cross-request prefix-cache hit rate in percent (0 when the cache
    /// is disabled or no admissions happened); populated via
    /// [`SloReport::with_prefix_stats`], not derivable from records.
    pub prefix_hit_rate_pct: f64,
    /// Prompt tokens whose prefill was skipped via prefix-cache reuse.
    pub prefill_tokens_saved: u64,
}

impl SloReport {
    /// Builds a report from completed-request records.
    pub fn from_records(records: &[RequestRecord]) -> Self {
        if records.is_empty() {
            return Self {
                requests: 0,
                attained: 0,
                attainment_pct: 0.0,
                goodput_tps: 0.0,
                throughput_tps: 0.0,
                makespan_ms: 0.0,
                mean_accepted_per_verify: 0.0,
                mean_ttft_ms: 0.0,
                p50_ttft_ms: 0.0,
                p99_ttft_ms: 0.0,
                ttft_attainment_pct: 0.0,
                p50_tpot_ms: 0.0,
                p99_tpot_ms: 0.0,
                per_category: Vec::new(),
                prefix_hit_rate_pct: 0.0,
                prefill_tokens_saved: 0,
            };
        }
        let start = records
            .iter()
            .map(|r| r.arrival_ms)
            .fold(f64::INFINITY, f64::min);
        let end = records
            .iter()
            .map(|r| r.completion_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        let makespan_ms = (end - start).max(1e-9);
        let attained_records: Vec<&RequestRecord> =
            records.iter().filter(|r| r.attained()).collect();
        let good_tokens: u64 = attained_records
            .iter()
            .map(|r| u64::from(r.output_tokens))
            .sum();
        let all_tokens: u64 = records.iter().map(|r| u64::from(r.output_tokens)).sum();
        let total_accepted: u64 = records.iter().map(|r| r.accepted_tokens).sum();
        let total_verifies: u64 = records.iter().map(|r| r.verify_steps).sum();
        let all_tpots: Vec<f64> = records.iter().map(|r| r.avg_tpot_ms()).collect();
        let all_ttfts: Vec<f64> = records.iter().map(|r| r.ttft_ms()).collect();
        let ttft_attained = records.iter().filter(|r| r.ttft_attained()).count();

        let mut per_category = Vec::new();
        for category in Category::ALL {
            let rs: Vec<&RequestRecord> =
                records.iter().filter(|r| r.category == category).collect();
            if rs.is_empty() {
                continue;
            }
            let tpots: Vec<f64> = rs.iter().map(|r| r.avg_tpot_ms()).collect();
            let attained = rs.iter().filter(|r| r.attained()).count();
            per_category.push(CategoryReport {
                category,
                requests: rs.len(),
                attained,
                mean_tpot_ms: mean(&tpots),
                p99_tpot_ms: percentile(&tpots, 99.0),
                violation_pct: 100.0 * (rs.len() - attained) as f64 / rs.len() as f64,
            });
        }

        Self {
            requests: records.len(),
            attained: attained_records.len(),
            attainment_pct: 100.0 * attained_records.len() as f64 / records.len() as f64,
            goodput_tps: good_tokens as f64 / (makespan_ms / 1e3),
            throughput_tps: all_tokens as f64 / (makespan_ms / 1e3),
            makespan_ms,
            mean_accepted_per_verify: if total_verifies == 0 {
                0.0
            } else {
                total_accepted as f64 / total_verifies as f64
            },
            mean_ttft_ms: mean(&all_ttfts),
            p50_ttft_ms: percentile(&all_ttfts, 50.0),
            p99_ttft_ms: percentile(&all_ttfts, 99.0),
            ttft_attainment_pct: 100.0 * ttft_attained as f64 / records.len() as f64,
            p50_tpot_ms: percentile(&all_tpots, 50.0),
            p99_tpot_ms: percentile(&all_tpots, 99.0),
            per_category,
            prefix_hit_rate_pct: 0.0,
            prefill_tokens_saved: 0,
        }
    }

    /// Attaches prefix-cache effectiveness from the run's merged hot-loop
    /// counters (records don't carry cache state, so the engine supplies
    /// it separately).
    #[must_use]
    pub fn with_prefix_stats(mut self, hotloop: &HotLoopStats) -> Self {
        self.prefix_hit_rate_pct = hotloop.prefix_hit_rate_pct();
        self.prefill_tokens_saved = hotloop.prefill_tokens_saved;
        self
    }

    /// Violation rate in percent (complement of attainment).
    pub fn violation_pct(&self) -> f64 {
        100.0 - self.attainment_pct
    }

    /// Report for one category, if present.
    pub fn category(&self, category: Category) -> Option<&CategoryReport> {
        self.per_category.iter().find(|c| c.category == category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, category: Category, tpot: f64, slo: f64, tokens: u32) -> RequestRecord {
        RequestRecord {
            id,
            category,
            tpot_slo_ms: slo,
            ttft_slo_ms: 1_000.0,
            arrival_ms: 0.0,
            decode_start_ms: 10.0,
            completion_ms: 10.0 + tpot * f64::from(tokens),
            output_tokens: tokens,
            accepted_tokens: 2 * u64::from(tokens) / 3,
            verify_steps: u64::from(tokens) / 3,
            preemptions: 0,
        }
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = SloReport::from_records(&[]);
        assert_eq!(r.requests, 0);
        assert_eq!(r.goodput_tps, 0.0);
    }

    #[test]
    fn attainment_counts_meeting_requests() {
        let records = vec![
            rec(1, Category::Chatbot, 40.0, 50.0, 10),
            rec(2, Category::Chatbot, 60.0, 50.0, 10),
        ];
        let r = SloReport::from_records(&records);
        assert_eq!(r.attained, 1);
        assert!((r.attainment_pct - 50.0).abs() < 1e-9);
        assert!((r.violation_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_counts_only_attained_tokens() {
        let records = vec![
            rec(1, Category::Chatbot, 40.0, 50.0, 10),
            rec(2, Category::Chatbot, 60.0, 50.0, 20),
        ];
        let r = SloReport::from_records(&records);
        // Makespan = max completion (10 + 60*20 = 1210 ms).
        assert!((r.makespan_ms - 1210.0).abs() < 1e-9);
        assert!((r.goodput_tps - 10.0 / 1.21).abs() < 1e-6);
        assert!((r.throughput_tps - 30.0 / 1.21).abs() < 1e-6);
        assert!(r.goodput_tps <= r.throughput_tps);
    }

    #[test]
    fn per_category_splits() {
        let records = vec![
            rec(1, Category::CodingCopilot, 20.0, 30.0, 10),
            rec(2, Category::Chatbot, 60.0, 50.0, 10),
        ];
        let r = SloReport::from_records(&records);
        assert_eq!(r.per_category.len(), 2);
        assert_eq!(r.category(Category::CodingCopilot).unwrap().attained, 1);
        assert!((r.category(Category::Chatbot).unwrap().violation_pct - 100.0).abs() < 1e-9);
        assert!(r.category(Category::Summarization).is_none());
    }

    #[test]
    fn tpot_percentiles_cover_the_spread() {
        let records = vec![
            rec(1, Category::Chatbot, 20.0, 50.0, 10),
            rec(2, Category::Chatbot, 40.0, 50.0, 10),
            rec(3, Category::Chatbot, 60.0, 50.0, 10),
        ];
        let r = SloReport::from_records(&records);
        assert!((r.p50_tpot_ms - 40.0).abs() < 1e-9);
        assert!(r.p99_tpot_ms >= r.p50_tpot_ms);
        assert!(r.p99_tpot_ms <= 60.0 + 1e-9);
    }

    #[test]
    fn ttft_percentiles_and_attainment_cover_the_spread() {
        let mut records = vec![
            rec(1, Category::Chatbot, 20.0, 50.0, 10),
            rec(2, Category::Chatbot, 40.0, 50.0, 10),
            rec(3, Category::Chatbot, 60.0, 50.0, 10),
        ];
        // TTFTs of 10 ms each; tighten one record's TTFT SLO below that.
        records[2].ttft_slo_ms = 5.0;
        let r = SloReport::from_records(&records);
        assert!((r.p50_ttft_ms - 10.0).abs() < 1e-9);
        assert!(r.p99_ttft_ms >= r.p50_ttft_ms);
        assert!((r.mean_ttft_ms - 10.0).abs() < 1e-9);
        assert!((r.ttft_attainment_pct - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accepted_tokens_aggregate() {
        let records = vec![rec(1, Category::Chatbot, 40.0, 50.0, 12)];
        let r = SloReport::from_records(&records);
        assert!((r.mean_accepted_per_verify - 2.0).abs() < 1e-9);
    }
}
