//! Per-request telemetry records.

use workload::Category;

/// Everything measured about one completed request.
///
/// Timestamps are simulation-clock milliseconds. A record is produced once,
/// when the request emits its final token.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Workload request id.
    pub id: u64,
    /// Application category.
    pub category: Category,
    /// The TPOT SLO this request carried, in milliseconds.
    pub tpot_slo_ms: f64,
    /// The TTFT SLO this request carried (arrival → first decode step), in
    /// milliseconds.
    pub ttft_slo_ms: f64,
    /// Arrival time.
    pub arrival_ms: f64,
    /// Time the first decode iteration started (prefill complete).
    pub decode_start_ms: f64,
    /// Time the final output token was emitted.
    pub completion_ms: f64,
    /// Output tokens generated.
    pub output_tokens: u32,
    /// Speculated tokens accepted across all verifications (0 for
    /// non-speculative engines).
    pub accepted_tokens: u64,
    /// Number of verification (or plain decode) iterations this request
    /// participated in.
    pub verify_steps: u64,
    /// Times the request was preempted / evicted and later resumed.
    pub preemptions: u32,
}

impl RequestRecord {
    /// Average decode per-token latency (the paper's attainment criterion).
    ///
    /// The paper's formulation measures latency "starting from the first
    /// decoding step" (§3), so TTFT/prefill is excluded here and reported
    /// separately by [`RequestRecord::ttft_ms`].
    pub fn avg_tpot_ms(&self) -> f64 {
        if self.output_tokens == 0 {
            return 0.0;
        }
        (self.completion_ms - self.decode_start_ms) / f64::from(self.output_tokens)
    }

    /// Time to first token (arrival → end of the first decode iteration is
    /// approximated as arrival → decode start, i.e. queueing + prefill).
    pub fn ttft_ms(&self) -> f64 {
        self.decode_start_ms - self.arrival_ms
    }

    /// End-to-end latency.
    pub fn e2e_ms(&self) -> f64 {
        self.completion_ms - self.arrival_ms
    }

    /// Whether the request met its TPOT SLO.
    pub fn attained(&self) -> bool {
        self.avg_tpot_ms() <= self.tpot_slo_ms
    }

    /// Whether the request met its TTFT SLO.
    ///
    /// Queueing, prefill and (in disaggregated deployments) KV migration
    /// all land in front of the first decode step, so this is the metric
    /// prefill/decode interference moves.
    pub fn ttft_attained(&self) -> bool {
        self.ttft_ms() <= self.ttft_slo_ms
    }

    /// Mean accepted tokens per verification step (Fig. 12's quantity).
    pub fn mean_accepted_per_verify(&self) -> f64 {
        if self.verify_steps == 0 {
            return 0.0;
        }
        self.accepted_tokens as f64 / self.verify_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tpot: f64, slo: f64) -> RequestRecord {
        RequestRecord {
            id: 1,
            category: Category::Chatbot,
            tpot_slo_ms: slo,
            ttft_slo_ms: 1_000.0,
            arrival_ms: 0.0,
            decode_start_ms: 100.0,
            completion_ms: 100.0 + tpot * 10.0,
            output_tokens: 10,
            accepted_tokens: 15,
            verify_steps: 5,
            preemptions: 0,
        }
    }

    #[test]
    fn avg_tpot_divides_decode_span() {
        let r = record(42.0, 50.0);
        assert!((r.avg_tpot_ms() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn attainment_compares_to_slo() {
        assert!(record(42.0, 50.0).attained());
        assert!(!record(51.0, 50.0).attained());
        assert!(record(50.0, 50.0).attained(), "boundary is inclusive");
    }

    #[test]
    fn ttft_is_queue_plus_prefill() {
        assert!((record(42.0, 50.0).ttft_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ttft_attainment_compares_to_ttft_slo() {
        let mut r = record(42.0, 50.0); // TTFT 100 ms vs SLO 1000 ms.
        assert!(r.ttft_attained());
        r.ttft_slo_ms = 99.0;
        assert!(!r.ttft_attained());
        r.ttft_slo_ms = 100.0;
        assert!(r.ttft_attained(), "boundary is inclusive");
    }

    #[test]
    fn accepted_per_verify() {
        assert!((record(42.0, 50.0).mean_accepted_per_verify() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_output_token_requests_do_not_divide_by_zero() {
        let mut r = record(42.0, 50.0);
        r.output_tokens = 0;
        assert_eq!(r.avg_tpot_ms(), 0.0);
    }
}
