//! Merging per-replica record streams into one cluster-wide view.
//!
//! A multi-replica deployment produces one [`RequestRecord`] stream per
//! engine. Cluster-level metrics (attainment, goodput, percentiles) are
//! defined over the union of those streams, ordered by completion time —
//! exactly what a fleet-wide metrics collector would see.

use crate::record::RequestRecord;
use crate::report::SloReport;

/// K-way merges per-replica completion streams by completion time.
///
/// Each input stream is expected to be sorted by `completion_ms` (engines
/// emit records in completion order); ties are broken by request id so the
/// merge is deterministic regardless of replica enumeration order. The
/// merge is verified to be a permutation-safe union: no record is dropped
/// or duplicated.
pub fn merge_by_completion(streams: Vec<Vec<RequestRecord>>) -> Vec<RequestRecord> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for stream in streams {
        merged.extend(stream);
    }
    merged.sort_by(|a, b| {
        a.completion_ms
            .total_cmp(&b.completion_ms)
            .then_with(|| a.id.cmp(&b.id))
    });
    merged
}

/// Per-replica reports plus the merged fleet-wide report.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The fleet-wide report over all records.
    pub merged: SloReport,
    /// One `(replica_label, report)` pair per replica, in replica order.
    pub per_replica: Vec<(String, SloReport)>,
}

impl ClusterReport {
    /// Builds per-replica and merged reports from labelled record streams.
    pub fn from_streams(streams: Vec<(String, Vec<RequestRecord>)>) -> Self {
        let per_replica = streams
            .iter()
            .map(|(label, records)| (label.clone(), SloReport::from_records(records)))
            .collect();
        let merged_records =
            merge_by_completion(streams.into_iter().map(|(_, records)| records).collect());
        Self {
            merged: SloReport::from_records(&merged_records),
            per_replica,
        }
    }

    /// Total completed requests across the fleet.
    pub fn requests(&self) -> usize {
        self.merged.requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Category;

    fn rec(id: u64, completion_ms: f64) -> RequestRecord {
        RequestRecord {
            id,
            category: Category::Chatbot,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            arrival_ms: 0.0,
            decode_start_ms: 1.0,
            completion_ms,
            output_tokens: 4,
            accepted_tokens: 0,
            verify_steps: 4,
            preemptions: 0,
        }
    }

    #[test]
    fn merge_orders_by_completion_then_id() {
        let merged = merge_by_completion(vec![
            vec![rec(0, 10.0), rec(2, 30.0)],
            vec![rec(1, 10.0), rec(3, 20.0)],
        ]);
        let ids: Vec<u64> = merged.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 3, 2]);
    }

    #[test]
    fn merge_conserves_every_record() {
        let merged = merge_by_completion(vec![
            vec![rec(0, 5.0)],
            Vec::new(),
            vec![rec(1, 3.0), rec(2, 4.0)],
        ]);
        assert_eq!(merged.len(), 3);
        let mut ids: Vec<u64> = merged.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn cluster_report_aggregates_all_replicas() {
        let report = ClusterReport::from_streams(vec![
            ("replica-0".into(), vec![rec(0, 10.0), rec(1, 20.0)]),
            ("replica-1".into(), vec![rec(2, 15.0)]),
        ]);
        assert_eq!(report.requests(), 3);
        assert_eq!(report.per_replica.len(), 2);
        assert_eq!(report.per_replica[0].1.requests, 2);
        assert_eq!(report.per_replica[1].1.requests, 1);
        // All three records share the same attainment criterion, so the
        // merged attainment is the record-weighted aggregate.
        assert_eq!(report.merged.requests, 3);
    }

    #[test]
    fn prefix_counters_merge_across_heterogeneous_replicas() {
        use crate::hotloop::HotLoopStats;
        // Replica 0 runs with the prefix cache on, replica 1 with it off
        // (all-zero prefix counters), replica 2 on but cold (lookups, no
        // hits). The fleet-wide hit rate must be lookup-weighted, not an
        // average of per-replica rates.
        let cache_on = HotLoopStats {
            prefix_lookups: 10,
            prefix_hits: 8,
            prefill_tokens_saved: 4_096,
            ..HotLoopStats::default()
        };
        let cache_off = HotLoopStats::default();
        let cache_cold = HotLoopStats {
            prefix_lookups: 10,
            prefix_hits: 0,
            prefill_tokens_saved: 0,
            ..HotLoopStats::default()
        };
        let mut fleet = HotLoopStats::default();
        for replica in [&cache_on, &cache_off, &cache_cold] {
            fleet.merge(replica);
        }
        assert_eq!(fleet.prefix_lookups, 20);
        assert_eq!(fleet.prefix_hits, 8);
        assert_eq!(fleet.prefill_tokens_saved, 4_096);
        assert!((fleet.prefix_hit_rate_pct() - 40.0).abs() < 1e-9);
        // A cache-off replica must not dilute the counters it never
        // incremented, only the rate denominator stays untouched.
        let mut on_plus_off = cache_on;
        on_plus_off.merge(&cache_off);
        assert!((on_plus_off.prefix_hit_rate_pct() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn merged_report_carries_fleet_prefix_stats() {
        use crate::hotloop::HotLoopStats;
        let report = ClusterReport::from_streams(vec![
            ("replica-0".into(), vec![rec(0, 10.0)]),
            ("replica-1".into(), vec![rec(1, 20.0)]),
        ]);
        let mut fleet = HotLoopStats {
            prefix_lookups: 4,
            prefix_hits: 1,
            prefill_tokens_saved: 512,
            ..HotLoopStats::default()
        };
        fleet.merge(&HotLoopStats::default()); // cache-off replica
        let merged = report.merged.clone().with_prefix_stats(&fleet);
        assert!((merged.prefix_hit_rate_pct - 25.0).abs() < 1e-9);
        assert_eq!(merged.prefill_tokens_saved, 512);
        // The base report is untouched apart from the attached stats.
        assert_eq!(merged.requests, report.merged.requests);
        assert_eq!(report.merged.prefix_hit_rate_pct, 0.0);
    }

    #[test]
    fn merged_report_surfaces_ttft_percentiles() {
        let report = ClusterReport::from_streams(vec![
            ("replica-0".into(), vec![rec(0, 10.0), rec(1, 20.0)]),
            ("replica-1".into(), vec![rec(2, 15.0)]),
        ]);
        // Every record has decode_start 1.0 and arrival 0.0 → TTFT 1 ms,
        // within the 1000 ms SLO the fixture carries.
        assert!((report.merged.p50_ttft_ms - 1.0).abs() < 1e-9);
        assert!((report.merged.p99_ttft_ms - 1.0).abs() < 1e-9);
        assert!((report.merged.ttft_attainment_pct - 100.0).abs() < 1e-9);
    }
}
