//! Hot-loop health counters (cache effectiveness, allocation discipline).
//!
//! The paper's Fig. 15 claim — scheduling overhead is negligible next to
//! GPU time — only holds while the CPU hot loop stays fast. These
//! counters make the two load-bearing properties *observable* per
//! replica, so tests can assert on them instead of trusting the
//! optimizations silently:
//!
//! * the LM-distribution memo actually hits (speculation and verification
//!   share context windows), and
//! * the iteration scratch buffers stop growing once warm (the loop is
//!   allocation-free at steady state).

/// Per-engine hot-loop statistics, surfaced through
/// `RunResult`/`UnitStats` next to the latency breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HotLoopStats {
    /// LM-distribution cache hits across the engine's model pair.
    pub dist_cache_hits: u64,
    /// LM-distribution cache misses (computed distributions).
    pub dist_cache_misses: u64,
    /// How often any iteration-scoped scratch buffer had to grow its
    /// allocation. Flat after warm-up ⇔ the hot loop allocates nothing
    /// per iteration.
    pub scratch_grow_events: u64,
    /// Iterations covered by `scratch_grow_events` (for the
    /// allocations-per-iteration ratio).
    pub iterations: u64,
    /// Largest decoding batch (requests verified in one iteration).
    pub peak_decode_batch: u64,
    /// Cross-request prefix-cache lookups performed at admission.
    pub prefix_lookups: u64,
    /// Lookups that matched at least one KV block of cached prefix.
    pub prefix_hits: u64,
    /// Prompt tokens whose prefill was skipped thanks to prefix reuse.
    pub prefill_tokens_saved: u64,
}

impl HotLoopStats {
    /// Distribution-cache hit rate in percent (0 with no lookups).
    pub fn dist_cache_hit_rate_pct(&self) -> f64 {
        let lookups = self.dist_cache_hits + self.dist_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            100.0 * self.dist_cache_hits as f64 / lookups as f64
        }
    }

    /// Scratch-buffer growth events per iteration (0 with no iterations).
    ///
    /// Growth happens while buffers warm up to the workload's batch and
    /// tree sizes; a value near zero means the steady-state loop performs
    /// no per-iteration allocations in the scratch-managed paths.
    pub fn allocs_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.scratch_grow_events as f64 / self.iterations as f64
        }
    }

    /// Prefix-cache hit rate in percent (0 with no lookups).
    pub fn prefix_hit_rate_pct(&self) -> f64 {
        if self.prefix_lookups == 0 {
            0.0
        } else {
            100.0 * self.prefix_hits as f64 / self.prefix_lookups as f64
        }
    }

    /// Accumulates another engine's counters (peak batch takes the max).
    pub fn merge(&mut self, other: &HotLoopStats) {
        self.dist_cache_hits += other.dist_cache_hits;
        self.dist_cache_misses += other.dist_cache_misses;
        self.scratch_grow_events += other.scratch_grow_events;
        self.iterations += other.iterations;
        self.peak_decode_batch = self.peak_decode_batch.max(other.peak_decode_batch);
        self.prefix_lookups += other.prefix_lookups;
        self.prefix_hits += other.prefix_hits;
        self.prefill_tokens_saved += other.prefill_tokens_saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_alloc_ratio() {
        let s = HotLoopStats {
            dist_cache_hits: 30,
            dist_cache_misses: 10,
            scratch_grow_events: 5,
            iterations: 100,
            peak_decode_batch: 7,
            prefix_lookups: 8,
            prefix_hits: 6,
            prefill_tokens_saved: 512,
        };
        assert!((s.dist_cache_hit_rate_pct() - 75.0).abs() < 1e-12);
        assert!((s.allocs_per_iteration() - 0.05).abs() < 1e-12);
        assert!((s.prefix_hit_rate_pct() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = HotLoopStats::default();
        assert_eq!(s.dist_cache_hit_rate_pct(), 0.0);
        assert_eq!(s.allocs_per_iteration(), 0.0);
        assert_eq!(s.prefix_hit_rate_pct(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_maxes_peak() {
        let mut a = HotLoopStats {
            dist_cache_hits: 1,
            dist_cache_misses: 2,
            scratch_grow_events: 3,
            iterations: 4,
            peak_decode_batch: 5,
            prefix_lookups: 6,
            prefix_hits: 2,
            prefill_tokens_saved: 100,
        };
        a.merge(&HotLoopStats {
            dist_cache_hits: 10,
            dist_cache_misses: 20,
            scratch_grow_events: 30,
            iterations: 40,
            peak_decode_batch: 3,
            prefix_lookups: 4,
            prefix_hits: 3,
            prefill_tokens_saved: 50,
        });
        assert_eq!(a.dist_cache_hits, 11);
        assert_eq!(a.dist_cache_misses, 22);
        assert_eq!(a.scratch_grow_events, 33);
        assert_eq!(a.iterations, 44);
        assert_eq!(a.peak_decode_batch, 5);
        assert_eq!(a.prefix_lookups, 10);
        assert_eq!(a.prefix_hits, 5);
        assert_eq!(a.prefill_tokens_saved, 150);
    }
}
