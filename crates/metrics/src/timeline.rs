//! Time-series views of a serving run.
//!
//! The headline metrics (attainment, goodput) are scalars over a whole run,
//! but diagnosing *why* a system misses SLOs needs the time dimension: when
//! did violations cluster, how did load evolve, did a burst overwhelm the
//! batch? [`Timeline`] buckets completed requests by completion time and
//! reports per-bucket attainment/throughput — the view used to analyse the
//! Fig. 13/14 staggered-burst experiment.

use crate::record::RequestRecord;

/// One bucket of a serving timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineBucket {
    /// Bucket start, in run milliseconds.
    pub start_ms: f64,
    /// Requests completed in this bucket.
    pub completed: usize,
    /// Of those, requests that met their SLO.
    pub attained: usize,
    /// Output tokens produced by requests completing in this bucket.
    pub tokens: u64,
    /// Mean of per-request average TPOT for this bucket's completions (ms).
    pub mean_tpot_ms: f64,
}

impl TimelineBucket {
    /// Bucket-local SLO attainment in percent, or `None` for an empty
    /// bucket. Empty buckets used to read as 100%, silently inflating
    /// plotted attainment over idle stretches; forcing callers to handle
    /// `None` keeps them out of averages.
    pub fn attainment_pct(&self) -> Option<f64> {
        if self.completed == 0 {
            None
        } else {
            Some(100.0 * self.attained as f64 / self.completed as f64)
        }
    }
}

/// A bucketed timeline over one run's completion records.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    buckets: Vec<TimelineBucket>,
    bucket_ms: f64,
}

impl Timeline {
    /// Buckets `records` by completion time into `bucket_ms` windows.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ms` is not positive.
    pub fn new(records: &[RequestRecord], bucket_ms: f64) -> Self {
        assert!(bucket_ms > 0.0, "bucket width must be positive");
        let Some(end) = records
            .iter()
            .map(|r| r.completion_ms)
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))
        else {
            return Self {
                buckets: Vec::new(),
                bucket_ms,
            };
        };
        let n = (end / bucket_ms).floor() as usize + 1;
        let mut buckets: Vec<TimelineBucket> = (0..n)
            .map(|i| TimelineBucket {
                start_ms: i as f64 * bucket_ms,
                completed: 0,
                attained: 0,
                tokens: 0,
                mean_tpot_ms: 0.0,
            })
            .collect();
        for r in records {
            let b = &mut buckets[(r.completion_ms / bucket_ms).floor() as usize];
            b.completed += 1;
            if r.attained() {
                b.attained += 1;
            }
            b.tokens += u64::from(r.output_tokens);
            // Online mean of per-request TPOT.
            b.mean_tpot_ms += (r.avg_tpot_ms() - b.mean_tpot_ms) / b.completed as f64;
        }
        Self { buckets, bucket_ms }
    }

    /// The buckets, in time order.
    pub fn buckets(&self) -> &[TimelineBucket] {
        &self.buckets
    }

    /// Bucket width in milliseconds.
    pub fn bucket_ms(&self) -> f64 {
        self.bucket_ms
    }

    /// The bucket with the lowest attainment (ties: earliest), if any
    /// non-empty bucket exists.
    pub fn worst_bucket(&self) -> Option<&TimelineBucket> {
        self.buckets
            .iter()
            .filter_map(|b| b.attainment_pct().map(|pct| (b, pct)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(b, _)| b)
    }

    /// Renders a compact ASCII strip of per-bucket attainment
    /// (`#` = 100%, `.` = 0%).
    pub fn sparkline(&self) -> String {
        let levels = [' ', '.', ':', '-', '=', '+', '*', '#'];
        self.buckets
            .iter()
            .map(|b| match b.attainment_pct() {
                None => ' ',
                Some(pct) => {
                    let idx = (pct / 100.0 * (levels.len() - 1) as f64).round() as usize;
                    levels[idx.min(levels.len() - 1)]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Category;

    fn rec(completion_ms: f64, tpot: f64, slo: f64) -> RequestRecord {
        RequestRecord {
            id: 0,
            category: Category::Chatbot,
            tpot_slo_ms: slo,
            ttft_slo_ms: 1_000.0,
            arrival_ms: 0.0,
            decode_start_ms: 0.0,
            completion_ms,
            output_tokens: (completion_ms / tpot).max(1.0) as u32,
            accepted_tokens: 0,
            verify_steps: 1,
            preemptions: 0,
        }
    }

    #[test]
    fn empty_timeline_has_no_buckets() {
        let t = Timeline::new(&[], 1000.0);
        assert!(t.buckets().is_empty());
        assert!(t.worst_bucket().is_none());
    }

    #[test]
    fn buckets_partition_completions() {
        let records = vec![
            rec(500.0, 10.0, 50.0),
            rec(1500.0, 10.0, 50.0),
            rec(1600.0, 100.0, 50.0),
        ];
        let t = Timeline::new(&records, 1000.0);
        assert_eq!(t.buckets().len(), 2);
        assert_eq!(t.buckets()[0].completed, 1);
        assert_eq!(t.buckets()[1].completed, 2);
        assert_eq!(t.buckets()[1].attained, 1);
        assert!((t.buckets()[1].attainment_pct().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn worst_bucket_finds_the_violation_cluster() {
        let records = vec![
            rec(500.0, 10.0, 50.0),
            rec(1500.0, 100.0, 50.0), // violation in bucket 1
            rec(2500.0, 10.0, 50.0),
        ];
        let t = Timeline::new(&records, 1000.0);
        let worst = t.worst_bucket().expect("has buckets");
        assert_eq!(worst.start_ms, 1000.0);
        assert_eq!(worst.attainment_pct(), Some(0.0));
    }

    #[test]
    fn empty_bucket_has_no_attainment() {
        // Completions in buckets 0 and 2 leave bucket 1 empty; it must
        // report None rather than a fake 100%.
        let records = vec![rec(500.0, 10.0, 50.0), rec(2500.0, 10.0, 50.0)];
        let t = Timeline::new(&records, 1000.0);
        assert_eq!(t.buckets()[1].completed, 0);
        assert_eq!(t.buckets()[1].attainment_pct(), None);
        assert_eq!(t.buckets()[0].attainment_pct(), Some(100.0));
    }

    #[test]
    fn sparkline_length_matches_buckets() {
        let records = vec![rec(500.0, 10.0, 50.0), rec(2500.0, 10.0, 50.0)];
        let t = Timeline::new(&records, 1000.0);
        assert_eq!(t.sparkline().chars().count(), t.buckets().len());
    }

    #[test]
    fn mean_tpot_is_bucket_local() {
        let records = vec![rec(900.0, 20.0, 50.0), rec(950.0, 40.0, 50.0)];
        let t = Timeline::new(&records, 1000.0);
        assert!((t.buckets()[0].mean_tpot_ms - 30.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        let _ = Timeline::new(&[], 0.0);
    }
}
